"""Recursive-descent parser for the mini-Scilab behaviour language."""

from __future__ import annotations

from repro.model.scilab import ast
from repro.model.scilab.lexer import ScilabSyntaxError, Token, TokenKind, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "|": 1,
    "&&": 2,
    "&": 2,
    "==": 3,
    "~=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    ".*": 5,
    "./": 5,
    "^": 6,
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def check(self, kind: TokenKind, text: str | None = None) -> bool:
        token = self.peek()
        if token.kind is not kind:
            return False
        return text is None or token.text == text

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        if not self.check(kind, text):
            token = self.peek()
            expected = text or kind.value
            raise ScilabSyntaxError(
                f"expected {expected!r} but found {token.text!r} at line {token.line}"
            )
        return self.advance()

    def skip_separators(self) -> None:
        while self.peek().kind in (TokenKind.NEWLINE, TokenKind.SEMICOLON):
            self.advance()

    # ------------------------------------------------------------------ #
    # grammar
    # ------------------------------------------------------------------ #
    def parse_script(self) -> ast.Script:
        statements = self.parse_statements(terminators=())
        self.expect(TokenKind.EOF)
        return ast.Script(tuple(statements))

    def parse_statements(self, terminators: tuple[str, ...]) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while True:
            self.skip_separators()
            token = self.peek()
            if token.kind is TokenKind.EOF:
                break
            if token.kind is TokenKind.KEYWORD and token.text in terminators:
                break
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.kind is TokenKind.KEYWORD and token.text == "if":
            return self.parse_if()
        if token.kind is TokenKind.KEYWORD and token.text == "for":
            return self.parse_for()
        if token.kind is TokenKind.IDENT:
            return self.parse_assignment()
        raise ScilabSyntaxError(
            f"unexpected token {token.text!r} at line {token.line}"
        )

    def parse_assignment(self) -> ast.Assignment:
        name = self.expect(TokenKind.IDENT).text
        indices: tuple[ast.Expression, ...] = ()
        if self.check(TokenKind.LPAREN):
            self.advance()
            args = [self.parse_expression()]
            while self.check(TokenKind.COMMA):
                self.advance()
                args.append(self.parse_expression())
            self.expect(TokenKind.RPAREN)
            indices = tuple(args)
        self.expect(TokenKind.ASSIGN)
        value = self.parse_expression()
        return ast.Assignment(name, indices, value)

    def parse_if(self) -> ast.IfStatement:
        self.expect(TokenKind.KEYWORD, "if")
        condition = self.parse_expression()
        if self.check(TokenKind.KEYWORD, "then"):
            self.advance()
        then_body = self.parse_statements(terminators=("else", "elseif", "end"))
        else_body: list[ast.Statement] = []
        if self.check(TokenKind.KEYWORD, "elseif"):
            # Desugar "elseif" into a nested if inside the else branch.
            nested = self.parse_elseif()
            else_body = [nested]
            return ast.IfStatement(condition, tuple(then_body), tuple(else_body))
        if self.check(TokenKind.KEYWORD, "else"):
            self.advance()
            else_body = self.parse_statements(terminators=("end",))
        self.expect(TokenKind.KEYWORD, "end")
        return ast.IfStatement(condition, tuple(then_body), tuple(else_body))

    def parse_elseif(self) -> ast.IfStatement:
        self.expect(TokenKind.KEYWORD, "elseif")
        condition = self.parse_expression()
        if self.check(TokenKind.KEYWORD, "then"):
            self.advance()
        then_body = self.parse_statements(terminators=("else", "elseif", "end"))
        else_body: list[ast.Statement] = []
        if self.check(TokenKind.KEYWORD, "elseif"):
            else_body = [self.parse_elseif()]
            return ast.IfStatement(condition, tuple(then_body), tuple(else_body))
        if self.check(TokenKind.KEYWORD, "else"):
            self.advance()
            else_body = self.parse_statements(terminators=("end",))
        self.expect(TokenKind.KEYWORD, "end")
        return ast.IfStatement(condition, tuple(then_body), tuple(else_body))

    def parse_for(self) -> ast.ForLoop:
        self.expect(TokenKind.KEYWORD, "for")
        var = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.ASSIGN)
        range_expr = self.parse_range()
        body = self.parse_statements(terminators=("end",))
        self.expect(TokenKind.KEYWORD, "end")
        return ast.ForLoop(var, range_expr, tuple(body))

    def parse_range(self) -> ast.RangeExpr:
        first = self.parse_expression(stop_at_colon=True)
        self.expect(TokenKind.COLON)
        second = self.parse_expression(stop_at_colon=True)
        if self.check(TokenKind.COLON):
            self.advance()
            third = self.parse_expression(stop_at_colon=True)
            return ast.RangeExpr(start=first, stop=third, step=second)
        return ast.RangeExpr(start=first, stop=second)

    # ------------------------------------------------------------------ #
    # expressions (precedence climbing)
    # ------------------------------------------------------------------ #
    def parse_expression(self, min_prec: int = 1, stop_at_colon: bool = False) -> ast.Expression:
        left = self.parse_unary(stop_at_colon)
        while True:
            token = self.peek()
            if token.kind is not TokenKind.OP or token.text not in _PRECEDENCE:
                break
            prec = _PRECEDENCE[token.text]
            if prec < min_prec:
                break
            op = self.advance().text
            right = self.parse_expression(prec + 1, stop_at_colon)
            # Elementwise Scilab operators map to their scalar counterparts in
            # this subset (block behaviours index arrays explicitly).
            op = {".*": "*", "./": "/", "~=": "!=", "&": "&&", "|": "||"}.get(op, op)
            left = ast.BinaryOp(op, left, right)
        return left

    def parse_unary(self, stop_at_colon: bool) -> ast.Expression:
        token = self.peek()
        if token.kind is TokenKind.OP and token.text in ("-", "+", "~"):
            self.advance()
            operand = self.parse_unary(stop_at_colon)
            if token.text == "+":
                return operand
            op = "!" if token.text == "~" else "-"
            return ast.UnaryOp(op, operand)
        return self.parse_primary(stop_at_colon)

    def parse_primary(self, stop_at_colon: bool) -> ast.Expression:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.Number(float(token.text))
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.check(TokenKind.LPAREN):
                self.advance()
                args: list[ast.Expression] = []
                if not self.check(TokenKind.RPAREN):
                    args.append(self.parse_expression())
                    while self.check(TokenKind.COMMA):
                        self.advance()
                        args.append(self.parse_expression())
                self.expect(TokenKind.RPAREN)
                return ast.FunctionCall(token.text, tuple(args))
            return ast.Identifier(token.text)
        if token.kind is TokenKind.LPAREN:
            self.advance()
            expr = self.parse_expression()
            self.expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.LBRACKET:
            self.advance()
            elements: list[ast.Expression] = []
            while not self.check(TokenKind.RBRACKET):
                if self.check(TokenKind.COMMA) or self.check(TokenKind.SEMICOLON):
                    self.advance()
                    continue
                elements.append(self.parse_expression())
            self.expect(TokenKind.RBRACKET)
            return ast.VectorLiteral(tuple(elements))
        raise ScilabSyntaxError(
            f"unexpected token {token.text!r} in expression at line {token.line}"
        )


def parse_script(source: str) -> ast.Script:
    """Parse a mini-Scilab behaviour script into its AST."""
    return _Parser(tokenize(source)).parse_script()
