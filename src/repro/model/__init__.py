"""Xcos-like dataflow modelling framework (paper Section II-A).

End users describe applications as dataflow diagrams whose blocks carry
mini-Scilab behaviour scripts.  The same script drives both the model-level
simulation (:meth:`Diagram.simulate`) and the compilation to the C-subset IR
(:mod:`repro.frontend`).
"""

from repro.model.blocks import Block, Port
from repro.model.diagram import Connection, Diagram, DiagramValidationError
from repro.model import library

__all__ = [
    "Block",
    "Port",
    "Connection",
    "Diagram",
    "DiagramValidationError",
    "library",
]
