"""Dataflow diagrams: blocks, connections, validation and simulation.

A :class:`Diagram` is the Xcos model equivalent.  It supports:

* structural validation (shape compatibility, single driver per input,
  no algebraic loops -- cycles must pass through a stateful delay block);
* model-level simulation, executing block behaviours in dataflow order for a
  number of steps (Section III-A: model validation before implementation);
* export of its external inputs/outputs, used by the front end when
  generating the IR entry function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.model.blocks import Block
from repro.utils.graphs import topological_order


class DiagramValidationError(ValueError):
    """Raised when a diagram is structurally invalid."""


@dataclass(frozen=True)
class Connection:
    """A directed signal link from an output port to an input port."""

    src_block: str
    src_port: str
    dst_block: str
    dst_port: str

    def __str__(self) -> str:
        return f"{self.src_block}.{self.src_port} -> {self.dst_block}.{self.dst_port}"


@dataclass
class Diagram:
    """A dataflow model: named blocks plus directed connections."""

    name: str
    blocks: dict[str, Block] = field(default_factory=dict)
    connections: list[Connection] = field(default_factory=list)
    #: Input ports of the whole diagram: (block, port) pairs fed externally.
    external_inputs: list[tuple[str, str]] = field(default_factory=list)
    #: Output ports of the whole diagram observed by the environment.
    external_outputs: list[tuple[str, str]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_block(self, block: Block) -> Block:
        if block.name in self.blocks:
            raise DiagramValidationError(f"duplicate block name {block.name!r}")
        self.blocks[block.name] = block
        return block

    def connect(self, src: str, src_port: str, dst: str, dst_port: str) -> Connection:
        """Connect ``src.src_port`` to ``dst.dst_port`` with shape checking."""
        if src not in self.blocks:
            raise DiagramValidationError(f"unknown source block {src!r}")
        if dst not in self.blocks:
            raise DiagramValidationError(f"unknown destination block {dst!r}")
        out_port = self.blocks[src].output_port(src_port)
        in_port = self.blocks[dst].input_port(dst_port)
        if out_port.shape != in_port.shape:
            raise DiagramValidationError(
                f"shape mismatch on {src}.{src_port} ({out_port.shape}) -> "
                f"{dst}.{dst_port} ({in_port.shape})"
            )
        for conn in self.connections:
            if conn.dst_block == dst and conn.dst_port == dst_port:
                raise DiagramValidationError(
                    f"input {dst}.{dst_port} already driven by {conn.src_block}.{conn.src_port}"
                )
        connection = Connection(src, src_port, dst, dst_port)
        self.connections.append(connection)
        return connection

    def mark_input(self, block: str, port: str) -> None:
        """Declare ``block.port`` as an external input of the diagram."""
        self.blocks[block].input_port(port)
        self.external_inputs.append((block, port))

    def mark_output(self, block: str, port: str) -> None:
        """Declare ``block.port`` as an external output of the diagram."""
        self.blocks[block].output_port(port)
        self.external_outputs.append((block, port))

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    def incoming(self, block: str) -> list[Connection]:
        return [c for c in self.connections if c.dst_block == block]

    def outgoing(self, block: str) -> list[Connection]:
        return [c for c in self.connections if c.src_block == block]

    def dataflow_edges(self, cut_stateful: bool = True) -> list[tuple[str, str]]:
        """Block-level dependence edges.

        When ``cut_stateful`` is True, edges leaving stateful (delay) blocks
        are dropped: their outputs depend on the *previous* step, so they do
        not create a same-step dependence.  This is the graph used both for
        execution ordering and for cycle detection.
        """
        edges = []
        for conn in self.connections:
            if cut_stateful and self.blocks[conn.src_block].is_stateful():
                continue
            edges.append((conn.src_block, conn.dst_block))
        return edges

    def execution_order(self) -> list[str]:
        """Topological execution order of the blocks (delay edges cut)."""
        try:
            return [
                str(b)
                for b in topological_order(self.blocks.keys(), self.dataflow_edges())
            ]
        except ValueError as exc:
            raise DiagramValidationError(
                f"diagram {self.name!r} contains an algebraic loop (a cycle "
                "without a delay block)"
            ) from exc

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Full structural validation of the diagram."""
        if not self.blocks:
            raise DiagramValidationError(f"diagram {self.name!r} has no blocks")
        driven = {(c.dst_block, c.dst_port) for c in self.connections}
        external = set(self.external_inputs)
        for block in self.blocks.values():
            block.validate()
            for port in block.inputs:
                key = (block.name, port.name)
                if key not in driven and key not in external:
                    raise DiagramValidationError(
                        f"input {block.name}.{port.name} is neither connected "
                        "nor marked as an external input"
                    )
        for block_name, port_name in self.external_inputs:
            if (block_name, port_name) in driven:
                raise DiagramValidationError(
                    f"external input {block_name}.{port_name} is also driven "
                    "by a connection"
                )
        # raises on algebraic loops
        self.execution_order()

    # ------------------------------------------------------------------ #
    # model-level simulation
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        steps: int = 1,
        input_provider: Callable[[int], Mapping[str, Any]] | Mapping[str, Any] | None = None,
    ) -> list[dict[str, Any]]:
        """Run the diagram for ``steps`` synchronous steps.

        ``input_provider`` either maps external input names
        (``"block.port"``) to values for every step, or is a callable
        ``step_index -> mapping``.  Returns one dict per step mapping
        external output names to values.
        """
        self.validate()
        order = self.execution_order()
        results: list[dict[str, Any]] = []
        for step in range(steps):
            if callable(input_provider):
                step_inputs = dict(input_provider(step))
            else:
                step_inputs = dict(input_provider or {})
            signal_values: dict[tuple[str, str], Any] = {}
            block_outputs: dict[str, dict[str, Any]] = {}
            for block_name in order:
                block = self.blocks[block_name]
                inputs: dict[str, Any] = {}
                for port in block.inputs:
                    key = (block_name, port.name)
                    driver = next(
                        (c for c in self.connections if (c.dst_block, c.dst_port) == key),
                        None,
                    )
                    if driver is not None:
                        src_key = (driver.src_block, driver.src_port)
                        if src_key in signal_values:
                            inputs[port.name] = signal_values[src_key]
                        else:
                            # Source is a stateful block evaluated later this
                            # step (feedback): read its previous-step output,
                            # i.e. its current state contribution.
                            inputs[port.name] = self._delayed_output(driver)
                    else:
                        external_name = f"{block_name}.{port.name}"
                        if external_name not in step_inputs:
                            raise DiagramValidationError(
                                f"simulation step {step}: missing external input "
                                f"{external_name!r}"
                            )
                        inputs[port.name] = step_inputs[external_name]
                outputs = block.evaluate(inputs)
                block_outputs[block_name] = outputs
                for port_name, value in outputs.items():
                    signal_values[(block_name, port_name)] = value
            step_result = {
                f"{b}.{p}": block_outputs[b][p] for b, p in self.external_outputs
            }
            results.append(step_result)
        return results

    def _delayed_output(self, connection: Connection) -> Any:
        """Previous-step output of a stateful source block (its state)."""
        block = self.blocks[connection.src_block]
        if not block.is_stateful():
            raise DiagramValidationError(
                f"algebraic loop through {connection.src_block!r}"
            )
        # Unit-delay style blocks expose their state under key 'z' / 'acc'.
        state_value = next(iter(block.state.values()))
        if isinstance(state_value, np.ndarray):
            return np.array(state_value, copy=True)
        return float(state_value)

    def reset(self) -> None:
        """Reset the state of every stateful block."""
        for block in self.blocks.values():
            if block.is_stateful():
                block.reset_state()

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Human-readable structure summary used by reports."""
        lines = [f"diagram {self.name}: {len(self.blocks)} blocks, {len(self.connections)} links"]
        for name in self.execution_order():
            block = self.blocks[name]
            lines.append(
                f"  {name} ({block.kind}) in={len(block.inputs)} out={len(block.outputs)}"
            )
        return "\n".join(lines)
