"""Tests for the dataflow framework and the three analyses built on it."""

import pytest

from repro.analysis import (
    DEF_EXTERNAL,
    DEF_UNINIT,
    ValueRange,
    assume,
    dead_stores,
    definitely_uninitialized_uses,
    eval_range,
    liveness,
    reaching_definitions,
    truth,
    value_ranges,
)
from repro.analysis.value_range import TOP
from repro.ir import FunctionBuilder
from repro.ir.cfg import build_cfg
from repro.ir.expressions import Const, Var
from repro.ir.types import FLOAT, INT


def straightline():
    fb = FunctionBuilder("straight")
    x = fb.scalar_input("x")
    y = fb.output_array("y", (4,))
    a = fb.local("a")
    fb.assign(a, x * 2.0)
    fb.assign(fb.at(y, 0), a + 1.0)
    return fb.build()


def looped():
    fb = FunctionBuilder("looped")
    x = fb.input_array("x", (8,))
    y = fb.output_array("y", (8,))
    with fb.loop("i", 0, 8) as i:
        fb.assign(fb.at(y, i), fb.at(x, i) * 2.0)
    return fb.build()


# ---------------------------------------------------------------------- #
# reaching definitions
# ---------------------------------------------------------------------- #
class TestReachingDefinitions:
    def test_boundary_sentinels(self):
        func = straightline()
        cfg = build_cfg(func)
        result = reaching_definitions(func, cfg)
        assert result.converged
        at_entry = result.entry[cfg.entry.bid]
        assert at_entry["x"] == frozenset({DEF_EXTERNAL})
        assert at_entry["y"] == frozenset({DEF_EXTERNAL})
        assert at_entry["a"] == frozenset({DEF_UNINIT})

    def test_scalar_assign_kills_strongly(self):
        func = straightline()
        cfg = build_cfg(func)
        result = reaching_definitions(func, cfg)
        after = result.exit[cfg.entry.bid]
        # the single assignment to `a` replaces the uninitialised sentinel
        assert DEF_UNINIT not in after["a"]
        assert len(after["a"]) == 1

    def test_array_assign_updates_weakly(self):
        func = straightline()
        cfg = build_cfg(func)
        result = reaching_definitions(func, cfg)
        after = result.exit[cfg.entry.bid]
        # the write to y[0] cannot kill the external definition of `y`
        assert DEF_EXTERNAL in after["y"]
        assert len(after["y"]) == 2

    def test_use_before_def_is_reported(self):
        fb = FunctionBuilder("ubd")
        y = fb.output_array("y", (4,))
        b = fb.local("b")
        fb.assign(fb.at(y, 0), b + 1.0)
        func = fb.build()
        uses = definitely_uninitialized_uses(func)
        assert [name for name, _bid in uses] == ["b"]

    def test_initialised_local_is_clean(self):
        fb = FunctionBuilder("ok")
        y = fb.output_array("y", (4,))
        b = fb.local("b", initial=0.0)
        fb.assign(fb.at(y, 0), b + 1.0)
        assert definitely_uninitialized_uses(fb.build()) == []

    def test_loop_index_is_defined_by_header(self):
        # the header defines the index, so body reads of it are not flagged
        assert definitely_uninitialized_uses(looped()) == []

    def test_partial_init_is_not_definite(self):
        # assigned on one branch only: the read joins {sid, UNINIT}, which is
        # a *may* problem the definite checker must not report
        fb = FunctionBuilder("maybe")
        x = fb.scalar_input("x")
        y = fb.output_array("y", (4,))
        t = fb.local("t")
        with fb.if_then(x > 0.0):
            fb.assign(t, 1.0)
        fb.assign(fb.at(y, 0), t)
        assert definitely_uninitialized_uses(fb.build()) == []


# ---------------------------------------------------------------------- #
# liveness
# ---------------------------------------------------------------------- #
class TestLiveness:
    def test_outputs_live_at_exit(self):
        func = straightline()
        cfg = build_cfg(func)
        result = liveness(func, cfg)
        assert result.converged
        # at the function exit every non-local is observable
        assert {"x", "y"} <= set(result.exit[cfg.exit.bid])

    def test_local_dead_after_last_read(self):
        func = straightline()
        cfg = build_cfg(func)
        result = liveness(func, cfg)
        assert "a" not in result.exit[cfg.entry.bid]

    def test_dead_store_is_reported(self):
        fb = FunctionBuilder("ds")
        y = fb.output_array("y", (4,))
        acc = fb.local("acc")
        fb.assign(acc, 1.0)  # never read afterwards
        fb.assign(fb.at(y, 0), 2.0)
        stores = dead_stores(fb.build())
        assert [name for name, _bid in stores] == ["acc"]

    def test_unused_prefix_is_exempt(self):
        fb = FunctionBuilder("sink")
        y = fb.output_array("y", (4,))
        sink = fb.local("unused_port")
        fb.assign(sink, 1.0)
        fb.assign(fb.at(y, 0), 2.0)
        assert dead_stores(fb.build()) == []

    def test_live_store_is_not_reported(self):
        assert dead_stores(straightline()) == []


# ---------------------------------------------------------------------- #
# value ranges
# ---------------------------------------------------------------------- #
class TestValueRange:
    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            ValueRange(3.0, 1.0)

    def test_hull_and_intersect(self):
        a, b = ValueRange(0.0, 4.0), ValueRange(2.0, 8.0)
        assert a.hull(b) == ValueRange(0.0, 8.0)
        assert a.intersect(b) == ValueRange(2.0, 4.0)
        assert a.intersect(ValueRange(5.0, 6.0)) is None

    def test_eval_arithmetic(self):
        env = {"x": ValueRange(0.0, 10.0)}
        x = Var("x", FLOAT)
        assert eval_range(x * 2.0 + 1.0, env) == ValueRange(1.0, 21.0)
        assert eval_range(x - x, env) == ValueRange(-10.0, 10.0)  # non-relational

    def test_eval_unknown_is_top(self):
        assert eval_range(Var("nowhere", FLOAT), {}) == TOP

    def test_truth_is_tristate(self):
        x = Var("x", FLOAT)
        assert truth(x < Const(0.0), {"x": ValueRange(1.0, 5.0)}) is False
        assert truth(x < Const(10.0), {"x": ValueRange(1.0, 5.0)}) is True
        assert truth(x < Const(3.0), {"x": ValueRange(1.0, 5.0)}) is None

    def test_assume_refines_and_contradicts(self):
        x = Var("x", FLOAT)
        env = {"x": ValueRange(0.0, 10.0)}
        refined = assume(x < Const(3.0), True, env)
        assert refined["x"].hi <= 3.0
        assert assume(x < Const(-1.0), True, env) is None

    def test_assume_integer_shrink(self):
        i = Var("i", INT)
        refined = assume(i < Const(3), True, {"i": ValueRange(0.0, 10.0)})
        assert refined["i"] == ValueRange(0.0, 2.0)

    def test_loop_index_range(self):
        func = looped()
        cfg = build_cfg(func)
        result = value_ranges(func, cfg)
        assert result.converged
        header_bid = next(iter(cfg.loop_stmts))
        body_bid = next(
            e.dst.bid for e in cfg.edges if e.src.bid == header_bid and e.kind == "taken"
        )
        after_bid = next(
            e.dst.bid for e in cfg.edges if e.src.bid == header_bid and e.kind == "exit"
        )
        assert result.entry[body_bid]["i"] == ValueRange(0.0, 7.0)
        assert result.entry[after_bid]["i"] == ValueRange(8.0, 8.0)

    def test_widening_converges_on_feedback(self):
        # accumulate inside a loop: without widening the chain is infinite
        fb = FunctionBuilder("acc")
        y = fb.output_array("y", (4,))
        s = fb.local("s", initial=0.0)
        with fb.loop("i", 0, 8) as i:
            fb.assign(s, s + 1.0)
        fb.assign(fb.at(y, 0), s)
        result = value_ranges(fb.build())
        assert result.converged
        assert result.iterations > 0

    def test_initialised_local_seeds_range(self):
        fb = FunctionBuilder("seeded")
        y = fb.output_array("y", (4,))
        n = fb.local("n", INT, initial=8)
        fb.assign(fb.at(y, 0), n * 1.0)
        func = fb.build()
        cfg = build_cfg(func)
        result = value_ranges(func, cfg)
        assert result.entry[cfg.entry.bid]["n"] == ValueRange(8.0, 8.0)
