"""Tests for the predictability transformations."""

import numpy as np
import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.ir import BinOp, Const, FunctionBuilder
from repro.ir.interpreter import run_function
from repro.ir.program import Storage
from repro.ir.statements import For
from repro.transforms import (
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    IndexSetSplittingPass,
    LoopFissionPass,
    LoopUnrollPass,
    PassManager,
    ScratchpadAllocationPass,
    StripMinePass,
    allocate_scratchpad,
)
from repro.wcet import HardwareCostModel, analyze_function_wcet


def saxpy_like(n=8):
    fb = FunctionBuilder("k")
    x = fb.input_array("x", (n,))
    y = fb.output_array("y", (n,))
    with fb.loop("i", 0, n) as i:
        fb.assign(fb.at(y, i), fb.at(x, i) * 2.0 + 1.0)
    return fb.build()


def run_both(before, after, inputs):
    a = run_function(before, dict(inputs))
    b = run_function(after, dict(inputs))
    return a, b


class TestSimplePasses:
    def test_constant_folding_folds_and_preserves_semantics(self):
        fb = FunctionBuilder("f")
        y = fb.local("y")
        x = fb.scalar_input("x")
        fb.assign(y, BinOp("+", BinOp("*", Const(2), Const(3)), x))
        func = fb.build()
        report = ConstantFoldingPass().run(func)
        assert report.changed
        assert run_function(func, {"x": 1.0}).scalar("y") == pytest.approx(7.0)

    def test_constant_folding_removes_static_branches(self):
        fb = FunctionBuilder("f")
        y = fb.local("y")
        with fb.if_then(BinOp(">", Const(2), Const(1))):
            fb.assign(y, 10.0)
        with fb.orelse():
            fb.assign(y, 20.0)
        func = fb.build()
        ConstantFoldingPass().run(func)
        assert run_function(func).scalar("y") == 10.0
        from repro.ir.statements import If

        assert not any(isinstance(s, If) for s in func.body.walk())

    def test_dead_code_removes_unused_local_assign(self):
        fb = FunctionBuilder("f")
        y = fb.output_array("y", (4,))
        dead = fb.local("dead")
        fb.assign(dead, 42.0)
        with fb.loop("i", 0, 4) as i:
            fb.assign(fb.at(y, i), 1.0)
        func = fb.build()
        report = DeadCodeEliminationPass().run(func)
        assert report.changed
        assert run_function(func).array("y").tolist() == [1.0] * 4

    def test_dead_code_keeps_observable_writes(self):
        func = saxpy_like()
        report = DeadCodeEliminationPass().run(func)
        result = run_function(func, {"x": np.arange(8.0)})
        np.testing.assert_allclose(result.array("y"), np.arange(8.0) * 2 + 1)
        assert not report.changed


class TestLoopTransforms:
    def test_unroll_small_loop_preserves_semantics_and_reduces_wcet(self):
        func = saxpy_like(4)
        platform = generic_predictable_multicore(cores=1)
        model = HardwareCostModel(platform, 0)
        before_wcet = analyze_function_wcet(func, model).total
        reference = run_function(func, {"x": np.arange(4.0)}).array("y").copy()

        report = LoopUnrollPass(max_trip_count=8).run(func)
        assert report.changed
        assert not any(isinstance(s, For) for s in func.body.walk())
        after_wcet = analyze_function_wcet(func, model).total
        assert after_wcet <= before_wcet  # loop overhead removed
        np.testing.assert_allclose(run_function(func, {"x": np.arange(4.0)}).array("y"), reference)

    def test_unroll_skips_large_loops(self):
        func = saxpy_like(64)
        report = LoopUnrollPass(max_trip_count=8).run(func)
        assert not report.changed

    def test_fission_splits_independent_statements(self):
        fb = FunctionBuilder("f")
        x = fb.input_array("x", (8,))
        y = fb.output_array("y", (8,))
        z = fb.output_array("z", (8,))
        with fb.loop("i", 0, 8) as i:
            fb.assign(fb.at(y, i), fb.at(x, i) * 2.0)
            fb.assign(fb.at(z, i), fb.at(x, i) + 1.0)
        func = fb.build()
        reference = run_function(func, {"x": np.arange(8.0)})
        report = LoopFissionPass().run(func)
        assert report.changed
        loops = [s for s in func.body.walk() if isinstance(s, For)]
        assert len(loops) == 2
        result = run_function(func, {"x": np.arange(8.0)})
        np.testing.assert_allclose(result.array("y"), reference.array("y"))
        np.testing.assert_allclose(result.array("z"), reference.array("z"))

    def test_fission_keeps_dependent_statements_together(self):
        fb = FunctionBuilder("f")
        x = fb.input_array("x", (8,))
        y = fb.output_array("y", (8,))
        t = fb.local("t")
        with fb.loop("i", 0, 8) as i:
            fb.assign(t, fb.at(x, i) * 2.0)
            fb.assign(fb.at(y, i), t + 1.0)
        func = fb.build()
        report = LoopFissionPass().run(func)
        assert not report.changed

    def test_index_set_splitting_removes_branch(self):
        fb = FunctionBuilder("f")
        x = fb.input_array("x", (16,))
        y = fb.output_array("y", (16,))
        with fb.loop("i", 0, 16) as i:
            with fb.if_then(BinOp("<", i, Const(8))):
                fb.assign(fb.at(y, i), fb.at(x, i) * 2.0)
            with fb.orelse():
                fb.assign(fb.at(y, i), 0.0)
        func = fb.build()
        reference = run_function(func, {"x": np.arange(16.0)}).array("y").copy()
        report = IndexSetSplittingPass().run(func)
        assert report.changed
        from repro.ir.statements import If

        assert not any(isinstance(s, If) for s in func.body.walk())
        np.testing.assert_allclose(run_function(func, {"x": np.arange(16.0)}).array("y"), reference)

    def test_strip_mine_preserves_semantics(self):
        func = saxpy_like(64)
        reference = run_function(func, {"x": np.arange(64.0)}).array("y").copy()
        report = StripMinePass(tile=16, min_trip_count=32).run(func)
        assert report.changed
        loops = [s for s in func.body.walk() if isinstance(s, For)]
        assert len(loops) == 2  # outer + inner
        np.testing.assert_allclose(run_function(func, {"x": np.arange(64.0)}).array("y"), reference)


class TestScratchpadAllocation:
    def _kernel_with_shared(self):
        fb = FunctionBuilder("k")
        a = fb.shared_array("a", (64,))
        b = fb.shared_array("b", (8,))
        y = fb.output_array("y", (64,))
        with fb.loop("i", 0, 64) as i:
            fb.assign(fb.at(y, i), fb.at(a, i) + fb.at(b, BinOp("%", i, Const(8))))
        return fb.build()

    def test_greedy_prefers_high_density_arrays(self):
        func = self._kernel_with_shared()
        allocation = allocate_scratchpad(func, capacity_bytes=64)
        # only b (32 bytes, 64 accesses) fits and has the best access density
        assert allocation.moved == ["b"]
        assert allocation.estimated_saving_cycles > 0

    def test_capacity_zero_moves_nothing(self):
        func = self._kernel_with_shared()
        allocation = allocate_scratchpad(func, capacity_bytes=0)
        assert allocation.moved == []
        with pytest.raises(ValueError):
            allocate_scratchpad(func, capacity_bytes=-1)

    def test_pass_rewrites_storage_and_reduces_wcet(self):
        func = self._kernel_with_shared()
        platform = generic_predictable_multicore(cores=1)
        model = HardwareCostModel(platform, 0)
        before = analyze_function_wcet(func, model).total
        report = ScratchpadAllocationPass(capacity_bytes=1024).run(func)
        assert report.changed
        moved = {d.name for d in func.decls if d.storage is Storage.SCRATCHPAD}
        assert moved  # at least one array relocated
        after = analyze_function_wcet(func, model).total
        assert after < before

    def test_protected_arrays_stay_shared(self):
        func = self._kernel_with_shared()
        allocation = allocate_scratchpad(func, capacity_bytes=4096, protect={"a", "b"})
        assert "a" not in allocation.moved and "b" not in allocation.moved

    def test_pass_manager_runs_in_order(self):
        func = saxpy_like(4)
        manager = PassManager([ConstantFoldingPass(), DeadCodeEliminationPass(), LoopUnrollPass()])
        reports = manager.run(func)
        assert [r.pass_name for r in reports] == [
            "constant_folding",
            "dead_code_elimination",
            "loop_unroll",
        ]
