"""Tests for the mini-Scilab lexer, parser and interpreter."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model.scilab import (
    ScilabInterpreter,
    ScilabRuntimeError,
    ScilabSyntaxError,
    parse_script,
    tokenize,
)
from repro.model.scilab import ast
from repro.model.scilab.ast import assigned_names, read_names
from repro.model.scilab.lexer import TokenKind


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("y = 2.5 * x + sin(t)")
        kinds = [t.kind for t in tokens]
        assert TokenKind.IDENT in kinds
        assert TokenKind.NUMBER in kinds
        assert kinds[-1] is TokenKind.EOF

    def test_comments_stripped(self):
        tokens = tokenize("x = 1 // a comment\ny = 2")
        texts = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert texts == ["x", "y"]

    def test_scientific_notation(self):
        tokens = tokenize("x = 1.5e-3")
        numbers = [t for t in tokens if t.kind is TokenKind.NUMBER]
        assert float(numbers[0].text) == pytest.approx(1.5e-3)

    def test_keywords_recognized(self):
        tokens = tokenize("if x then end")
        assert [t.kind for t in tokens[:1]] == [TokenKind.KEYWORD]

    def test_unexpected_character(self):
        with pytest.raises(ScilabSyntaxError):
            tokenize("x = $")

    def test_multichar_operators(self):
        tokens = tokenize("a <= b ~= c")
        ops = [t.text for t in tokens if t.kind is TokenKind.OP]
        assert ops == ["<=", "~="]


class TestParser:
    def test_simple_assignment(self):
        script = parse_script("y = 2 * u + 1")
        assert len(script) == 1
        stmt = script.statements[0]
        assert isinstance(stmt, ast.Assignment)
        assert stmt.target == "y"
        assert not stmt.is_indexed

    def test_indexed_assignment(self):
        script = parse_script("y(i) = u(i) * k")
        stmt = script.statements[0]
        assert stmt.is_indexed
        assert isinstance(stmt.value, ast.BinaryOp)

    def test_for_loop_with_step(self):
        script = parse_script("for i = 1:2:9\n  y(i) = 0\nend")
        loop = script.statements[0]
        assert isinstance(loop, ast.ForLoop)
        assert loop.range.step is not None

    def test_if_elseif_else(self):
        src = (
            "if x > 0 then\n"
            "  y = 1\n"
            "elseif x < 0 then\n"
            "  y = 2\n"
            "else\n"
            "  y = 3\n"
            "end"
        )
        stmt = parse_script(src).statements[0]
        assert isinstance(stmt, ast.IfStatement)
        nested = stmt.else_body[0]
        assert isinstance(nested, ast.IfStatement)
        assert nested.else_body

    def test_operator_precedence(self):
        stmt = parse_script("y = 1 + 2 * 3").statements[0]
        assert isinstance(stmt.value, ast.BinaryOp)
        assert stmt.value.op == "+"
        assert isinstance(stmt.value.right, ast.BinaryOp)

    def test_vector_literal(self):
        stmt = parse_script("h = [0.25 0.5 0.25]").statements[0]
        assert isinstance(stmt.value, ast.VectorLiteral)
        assert len(stmt.value.elements) == 3

    def test_syntax_error_reported(self):
        with pytest.raises(ScilabSyntaxError):
            parse_script("for = 3")
        with pytest.raises(ScilabSyntaxError):
            parse_script("if x then y = 1")  # missing end

    def test_name_analysis(self):
        script = parse_script("acc = 0\nfor i = 1:n\n  acc = acc + u(i)\nend\ny = acc")
        assert assigned_names(script) == {"acc", "y"}
        assert {"n", "u", "acc"} <= read_names(script)


class TestInterpreter:
    def test_scalar_arithmetic(self):
        env = ScilabInterpreter().run(parse_script("y = 2 * x + 1"), {"x": 3.0})
        assert env["y"] == pytest.approx(7.0)

    def test_builtins(self):
        env = ScilabInterpreter().run(parse_script("y = sqrt(abs(x)) + cos(0)"), {"x": -4.0})
        assert env["y"] == pytest.approx(3.0)

    def test_pi_constant(self):
        env = ScilabInterpreter().run(parse_script("y = sin(pi / 2)"), {})
        assert env["y"] == pytest.approx(1.0)

    def test_for_loop_accumulation(self):
        src = "acc = 0\nfor i = 1:n\n  acc = acc + u(i)\nend\ny = acc"
        env = ScilabInterpreter().run(parse_script(src), {"n": 4, "u": np.array([1.0, 2.0, 3.0, 4.0])})
        assert env["y"] == pytest.approx(10.0)

    def test_indexed_write_one_based(self):
        src = "for i = 1:3\n  y(i) = 10 * i\nend"
        env = ScilabInterpreter().run(parse_script(src), {"y": np.zeros(3)})
        np.testing.assert_allclose(env["y"], [10.0, 20.0, 30.0])

    def test_if_else(self):
        src = "if u > 0 then\n  y = 1\nelse\n  y = 0 - 1\nend"
        run = ScilabInterpreter().run
        assert run(parse_script(src), {"u": 2.0})["y"] == 1
        assert run(parse_script(src), {"u": -2.0})["y"] == -1

    def test_index_out_of_bounds(self):
        with pytest.raises(ScilabRuntimeError):
            ScilabInterpreter().run(parse_script("y(5) = 1"), {"y": np.zeros(3)})
        with pytest.raises(ScilabRuntimeError):
            ScilabInterpreter().run(parse_script("x = y(0)"), {"y": np.zeros(3)})

    def test_unbound_variable(self):
        with pytest.raises(ScilabRuntimeError):
            ScilabInterpreter().run(parse_script("y = nope + 1"), {})

    def test_division_by_zero(self):
        with pytest.raises(ScilabRuntimeError):
            ScilabInterpreter().run(parse_script("y = 1 / x"), {"x": 0.0})

    def test_indexed_assign_requires_preallocation(self):
        with pytest.raises(ScilabRuntimeError):
            ScilabInterpreter().run(parse_script("y(1) = 3"), {})

    def test_2d_indexing(self):
        src = "y = A(2, 3)"
        a = np.arange(12, dtype=float).reshape(3, 4)
        env = ScilabInterpreter().run(parse_script(src), {"A": a})
        assert env["y"] == pytest.approx(a[1, 2])

    def test_step_range(self):
        src = "acc = 0\nfor i = 1:2:7\n  acc = acc + i\nend"
        env = ScilabInterpreter().run(parse_script(src), {})
        assert env["acc"] == pytest.approx(1 + 3 + 5 + 7)

    def test_inputs_not_mutated(self):
        u = np.ones(3)
        ScilabInterpreter().run(parse_script("u(1) = 99"), {"u": u})
        assert u[0] == 1.0

    @given(st.floats(-100, 100), st.floats(-100, 100))
    @settings(max_examples=30, deadline=None)
    def test_saturation_property(self, x, hi):
        hi = abs(hi) + 1.0
        src = "y = u\nif u > hi then\n  y = hi\nend\nif u < 0 - hi then\n  y = 0 - hi\nend"
        env = ScilabInterpreter().run(parse_script(src), {"u": x, "hi": hi})
        assert -hi - 1e-9 <= env["y"] <= hi + 1e-9
