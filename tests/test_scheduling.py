"""Tests for the schedulers (list, exact, metaheuristics, baselines)."""

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.scheduling import (
    WcetAwareListScheduler,
    acet_driven_schedule,
    branch_and_bound_schedule,
    contention_free_schedule,
    genetic_schedule,
    sequential_schedule,
    simulated_annealing_schedule,
)
from repro.scheduling.schedule import ScheduleError
from repro.usecases.workloads import synthetic_compiled_model
from repro.wcet import HardwareCostModel, annotate_htg_wcets


def make_case(num_kernels=6, chunks=2, seed=1):
    model = synthetic_compiled_model(num_kernels=num_kernels, vector_size=32, seed=seed)
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    platform = generic_predictable_multicore(cores=4)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    return model, htg, platform


@pytest.fixture(scope="module")
def case():
    return make_case()


class TestListScheduler:
    def test_schedule_is_valid_and_analysed(self, case):
        model, htg, platform = case
        schedule = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        schedule.validate(htg, platform)
        assert schedule.wcet_bound > 0
        assert schedule.scheduler == "wcet_list"

    def test_parallel_beats_sequential(self, case):
        model, htg, platform = case
        parallel = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        sequential = sequential_schedule(htg, model.entry, platform)
        assert parallel.wcet_bound <= sequential.wcet_bound

    def test_more_cores_never_worse_with_max_cores(self, case):
        model, htg, platform = case
        one = WcetAwareListScheduler(platform=platform, max_cores=1).schedule(htg, model.entry)
        four = WcetAwareListScheduler(platform=platform, max_cores=4).schedule(htg, model.entry)
        assert four.wcet_bound <= one.wcet_bound * 1.05

    def test_bound_not_below_critical_path(self, case):
        model, htg, platform = case
        schedule = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        assert schedule.wcet_bound >= htg.critical_path_length() - 1e-6

    def test_gantt_renders(self, case):
        model, htg, platform = case
        schedule = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        text = schedule.gantt()
        assert "WCET bound" in text


class TestBaselines:
    def test_sequential_uses_one_core(self, case):
        model, htg, platform = case
        schedule = sequential_schedule(htg, model.entry, platform)
        assert schedule.num_cores_used == 1
        assert schedule.result.interference_cycles == 0.0

    def test_acet_schedule_valid_but_usually_looser(self, case):
        model, htg, platform = case
        acet = acet_driven_schedule(htg, model.entry, platform)
        wcet = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        acet.validate(htg, platform)
        # the WCET-aware schedule can never be worse than the ACET-driven one
        # by more than numerical noise (it optimises the reported metric)
        assert wcet.wcet_bound <= acet.wcet_bound * 1.01

    def test_contention_free_has_zero_interference(self, case):
        model, htg, platform = case
        schedule = contention_free_schedule(htg, model.entry, platform)
        schedule.validate(htg, platform)
        assert schedule.result.interference_cycles == 0.0


class TestExactAndMetaheuristics:
    def test_bnb_optimal_not_worse_than_heuristic(self):
        model, htg, platform = make_case(num_kernels=4, chunks=1, seed=2)
        heuristic = WcetAwareListScheduler(platform=platform, max_cores=2).schedule(htg, model.entry)
        optimal, stats = branch_and_bound_schedule(htg, model.entry, platform, max_cores=2)
        assert optimal.wcet_bound <= heuristic.wcet_bound + 1e-6
        assert stats.nodes_explored > 0

    def test_bnb_rejects_large_graphs(self, case):
        model, htg, platform = case
        with pytest.raises(ValueError):
            branch_and_bound_schedule(htg, model.entry, platform, max_tasks=2)

    def test_simulated_annealing_not_worse_than_start(self, case):
        model, htg, platform = case
        start = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        annealed = simulated_annealing_schedule(
            htg, model.entry, platform, iterations=30, seed=5
        )
        annealed.validate(htg, platform)
        assert annealed.wcet_bound <= start.wcet_bound + 1e-6

    def test_genetic_produces_valid_schedule(self):
        model, htg, platform = make_case(num_kernels=5, chunks=1, seed=3)
        schedule = genetic_schedule(
            htg, model.entry, platform, population_size=6, generations=4, seed=7
        )
        schedule.validate(htg, platform)
        assert schedule.wcet_bound > 0

    def test_metaheuristics_deterministic_given_seed(self):
        model, htg, platform = make_case(num_kernels=5, chunks=1, seed=4)
        a = simulated_annealing_schedule(htg, model.entry, platform, iterations=20, seed=11)
        b = simulated_annealing_schedule(htg, model.entry, platform, iterations=20, seed=11)
        assert a.mapping == b.mapping
        assert a.wcet_bound == pytest.approx(b.wcet_bound)


class TestScheduleValidation:
    def test_incomplete_mapping_rejected(self, case):
        model, htg, platform = case
        schedule = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        broken = dict(schedule.mapping)
        broken.pop(next(iter(broken)))
        from repro.scheduling.schedule import Schedule

        bad = Schedule(htg_name=htg.name, mapping=broken, order=schedule.order)
        with pytest.raises(ScheduleError):
            bad.validate(htg, platform)

    def test_unknown_core_rejected(self, case):
        model, htg, platform = case
        schedule = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        from repro.scheduling.schedule import Schedule

        bad_mapping = {tid: 99 for tid in schedule.mapping}
        bad = Schedule(htg_name=htg.name, mapping=bad_mapping, order={99: list(bad_mapping)})
        with pytest.raises(ScheduleError):
            bad.validate(htg, platform)

    def test_unanalysed_schedule_has_no_bound(self, case):
        model, htg, platform = case
        from repro.scheduling.schedule import Schedule

        schedule = Schedule(htg_name=htg.name, mapping={}, order={})
        with pytest.raises(ScheduleError):
            _ = schedule.wcet_bound
