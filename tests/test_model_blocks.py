"""Tests for the block library and dataflow diagrams."""

import numpy as np
import pytest

from repro.model import Diagram, DiagramValidationError, library
from repro.model.blocks import Block, BlockError, Port


class TestBlockLibrary:
    def test_gain_scalar_and_vector(self):
        g = library.gain("g", 3.0)
        assert g.evaluate({"u": 2.0})["y"] == pytest.approx(6.0)
        gv = library.gain("gv", 2.0, size=4)
        out = gv.evaluate({"u": np.array([1.0, 2.0, 3.0, 4.0])})["y"]
        np.testing.assert_allclose(out, [2, 4, 6, 8])

    def test_add_and_subtract(self):
        s = library.add("s", size=3)
        out = s.evaluate({"a": np.ones(3), "b": np.full(3, 2.0)})["y"]
        np.testing.assert_allclose(out, 3.0)
        d = library.add("d", size=3, sign_b=-1.0)
        out = d.evaluate({"a": np.full(3, 5.0), "b": np.ones(3)})["y"]
        np.testing.assert_allclose(out, 4.0)

    def test_saturation(self):
        sat = library.saturation("sat", -1.0, 1.0)
        assert sat.evaluate({"u": 5.0})["y"] == 1.0
        assert sat.evaluate({"u": -5.0})["y"] == -1.0
        assert sat.evaluate({"u": 0.5})["y"] == 0.5

    def test_threshold_vector(self):
        th = library.threshold("th", 0.5, size=4)
        out = th.evaluate({"u": np.array([0.1, 0.6, 0.5, 2.0])})["y"]
        np.testing.assert_allclose(out, [0, 1, 0, 1])

    def test_unit_delay_state(self):
        z = library.unit_delay("z")
        assert z.evaluate({"u": 7.0})["y"] == 0.0
        assert z.evaluate({"u": 9.0})["y"] == 7.0
        z.reset_state()
        assert z.evaluate({"u": 1.0})["y"] == 0.0

    def test_integrator(self):
        integ = library.discrete_integrator("i", dt=0.5)
        assert integ.evaluate({"u": 2.0})["y"] == pytest.approx(1.0)
        assert integ.evaluate({"u": 2.0})["y"] == pytest.approx(2.0)

    def test_fir_matches_numpy_convolution(self):
        taps = np.array([0.5, 0.3, 0.2])
        fir = library.fir_filter("f", taps, size=8)
        u = np.arange(1.0, 9.0)
        out = fir.evaluate({"u": u})["y"]
        expected = np.convolve(u, taps)[:8]
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_dot_and_norm(self):
        dot = library.dot_product("d", 3)
        assert dot.evaluate({"a": np.array([1.0, 2, 3]), "b": np.array([4.0, 5, 6])})["y"] == 32.0
        nrm = library.vector_norm("n", 4)
        assert nrm.evaluate({"u": np.array([3.0, 4.0, 0.0, 0.0])})["y"] == pytest.approx(5.0)

    def test_matrix_vector(self):
        mv = library.matrix_vector("mv", 2, 3)
        A = np.arange(6, dtype=float).reshape(2, 3)
        x = np.array([1.0, 0.0, 2.0])
        out = mv.evaluate({"A": A, "x": x})["y"]
        np.testing.assert_allclose(out, A @ x)

    def test_elementwise_and_lookup(self):
        sq = library.elementwise("s", "sqrt", size=3)
        out = sq.evaluate({"u": np.array([1.0, 4.0, 9.0])})["y"]
        np.testing.assert_allclose(out, [1, 2, 3])
        with pytest.raises(ValueError):
            library.elementwise("bad", "nosuchfunc")
        lut = library.lookup_1d("l", np.array([10.0, 20.0, 30.0]))
        assert lut.evaluate({"u": 1.2})["y"] == 20.0
        assert lut.evaluate({"u": -5.0})["y"] == 10.0
        assert lut.evaluate({"u": 99.0})["y"] == 30.0

    def test_switch_and_reductions(self):
        sw = library.switch("sw", size=2)
        a, b = np.array([1.0, 1.0]), np.array([2.0, 2.0])
        np.testing.assert_allclose(sw.evaluate({"ctrl": 1.0, "a": a, "b": b})["y"], a)
        np.testing.assert_allclose(sw.evaluate({"ctrl": 0.0, "a": a, "b": b})["y"], b)
        mx = library.scalar_max("m", 4)
        assert mx.evaluate({"u": np.array([1.0, 9.0, 3.0, 2.0])})["y"] == 9.0
        mn = library.window_min("w", 4)
        assert mn.evaluate({"u": np.array([5.0, 2.0, 8.0, 4.0])})["y"] == 2.0

    def test_vector_source_and_constant(self):
        src = library.vector_source("v", 3, np.array([7.0, 8.0, 9.0]))
        np.testing.assert_allclose(src.evaluate({})["y"], [7, 8, 9])
        c = library.constant("c", 4.5)
        assert c.evaluate({})["y"] == 4.5

    def test_block_validation(self):
        bad = Block(name="b", kind="x", outputs=[Port("y")], behavior="z = 1")
        with pytest.raises(BlockError):
            bad.validate()
        with pytest.raises(BlockError):
            Block(name="", kind="x")
        with pytest.raises(BlockError):
            Block(name="b", kind="x", inputs=[Port("u")], outputs=[Port("u")])
        with pytest.raises(BlockError):
            Block(name="b", kind="x", inputs=[Port("u")], params={"u": 1.0})

    def test_missing_input_rejected(self):
        g = library.gain("g", 2.0)
        with pytest.raises(BlockError):
            g.evaluate({})


def build_alarm_diagram(size=8):
    """distance sensor -> gain -> threshold -> max-reduce alarm."""
    d = Diagram("alarm")
    d.add_block(library.gain("scale", 0.5, size=size))
    d.add_block(library.threshold("detect", 1.0, size=size))
    d.add_block(library.scalar_max("alarm", size=size))
    d.connect("scale", "y", "detect", "u")
    d.connect("detect", "y", "alarm", "u")
    d.mark_input("scale", "u")
    d.mark_output("alarm", "y")
    return d


class TestDiagram:
    def test_validation_and_order(self):
        d = build_alarm_diagram()
        d.validate()
        order = d.execution_order()
        assert order.index("scale") < order.index("detect") < order.index("alarm")

    def test_shape_mismatch_rejected(self):
        d = Diagram("bad")
        d.add_block(library.gain("a", 1.0, size=4))
        d.add_block(library.gain("b", 1.0, size=8))
        with pytest.raises(DiagramValidationError):
            d.connect("a", "y", "b", "u")

    def test_double_driver_rejected(self):
        d = Diagram("bad")
        d.add_block(library.constant("c1", 1.0))
        d.add_block(library.constant("c2", 2.0))
        d.add_block(library.gain("g", 1.0))
        d.connect("c1", "y", "g", "u")
        with pytest.raises(DiagramValidationError):
            d.connect("c2", "y", "g", "u")

    def test_unconnected_input_detected(self):
        d = Diagram("bad")
        d.add_block(library.gain("g", 1.0))
        d.mark_output("g", "y")
        with pytest.raises(DiagramValidationError):
            d.validate()

    def test_duplicate_block_rejected(self):
        d = Diagram("dup")
        d.add_block(library.constant("c", 1.0))
        with pytest.raises(DiagramValidationError):
            d.add_block(library.constant("c", 2.0))

    def test_algebraic_loop_detected(self):
        d = Diagram("loop")
        d.add_block(library.gain("g1", 1.0))
        d.add_block(library.gain("g2", 1.0))
        d.connect("g1", "y", "g2", "u")
        d.connect("g2", "y", "g1", "u")
        with pytest.raises(DiagramValidationError):
            d.validate()

    def test_feedback_through_delay_allowed(self):
        d = Diagram("feedback")
        d.add_block(library.add("sum", size=1))
        d.add_block(library.unit_delay("z"))
        d.connect("sum", "y", "z", "u")
        d.connect("z", "y", "sum", "b")
        d.mark_input("sum", "a")
        d.mark_output("sum", "y")
        d.validate()
        # accumulator behaviour: y[t] = sum of inputs up to t
        outs = d.simulate(steps=4, input_provider={"sum.a": 1.0})
        values = [o["sum.y"] for o in outs]
        assert values == [1.0, 2.0, 3.0, 4.0]

    def test_simulation_of_alarm_pipeline(self):
        d = build_alarm_diagram(size=4)
        outs = d.simulate(
            steps=1, input_provider={"scale.u": np.array([0.0, 1.0, 3.0, 10.0])}
        )
        assert outs[0]["alarm.y"] == 1.0
        d.reset()
        outs = d.simulate(steps=1, input_provider={"scale.u": np.zeros(4)})
        assert outs[0]["alarm.y"] == 0.0

    def test_simulation_missing_input(self):
        d = build_alarm_diagram(size=4)
        with pytest.raises(DiagramValidationError):
            d.simulate(steps=1)

    def test_summary_mentions_blocks(self):
        text = build_alarm_diagram().summary()
        assert "scale" in text and "alarm" in text
