"""Tests for HTG extraction and the WCET analyses (code & system level)."""

import numpy as np
import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.frontend import compile_diagram
from repro.htg import extract_htg, is_parallelizable_loop
from repro.htg.extraction import ExtractionOptions
from repro.htg.task import TaskKind
from repro.ir import FunctionBuilder, BinOp, Const
from repro.model import Diagram, library
from repro.scheduling.schedule import default_core_order, evaluate_mapping
from repro.wcet import (
    HardwareCostModel,
    analyze_function_wcet,
    annotate_htg_wcets,
    ipet_wcet,
    system_level_wcet,
)
from repro.wcet.system_level import SystemWcetError, contention_oblivious_bound


def small_pipeline(size=16):
    d = Diagram("pipe")
    d.add_block(library.gain("a", 2.0, size=size))
    d.add_block(library.saturation("b", 0.0, 10.0, size=size))
    d.add_block(library.scalar_max("c", size))
    d.connect("a", "y", "b", "u")
    d.connect("b", "y", "c", "u")
    d.mark_input("a", "u")
    d.mark_output("c", "y")
    return compile_diagram(d)


@pytest.fixture(scope="module")
def pipeline_model():
    return small_pipeline()


@pytest.fixture(scope="module")
def platform4():
    return generic_predictable_multicore(cores=4)


class TestParallelizableLoopDetection:
    def test_elementwise_loop_is_parallel(self):
        fb = FunctionBuilder("f")
        x = fb.input_array("x", (8,))
        y = fb.output_array("y", (8,))
        with fb.loop("i", 0, 8) as i:
            fb.assign(fb.at(y, i), fb.at(x, i) * 2.0)
        loop = fb.build().body.stmts[0]
        assert is_parallelizable_loop(loop)

    def test_reduction_is_not_parallel(self):
        fb = FunctionBuilder("f")
        x = fb.input_array("x", (8,))
        acc = fb.local("acc")
        fb.assign(acc, 0.0)
        with fb.loop("i", 0, 8) as i:
            fb.assign(acc, acc + fb.at(x, i))
        loop = fb.build().body.stmts[1]
        assert not is_parallelizable_loop(loop)

    def test_temporary_def_first_is_parallel(self):
        fb = FunctionBuilder("f")
        x = fb.input_array("x", (8,))
        y = fb.output_array("y", (8,))
        t = fb.local("t")
        with fb.loop("i", 0, 8) as i:
            fb.assign(t, fb.at(x, i) * 2.0)
            fb.assign(fb.at(y, i), t + 1.0)
        loop = fb.build().body.stmts[0]
        assert is_parallelizable_loop(loop)

    def test_stencil_write_is_not_parallel(self):
        fb = FunctionBuilder("f")
        y = fb.output_array("y", (8,))
        with fb.loop("i", 0, 7) as i:
            fb.assign(fb.at(y, BinOp("+", i, Const(1))), fb.at(y, i))
        loop = fb.build().body.stmts[0]
        assert not is_parallelizable_loop(loop)


class TestHtgExtraction:
    def test_block_granularity(self, pipeline_model):
        htg = extract_htg(pipeline_model, ExtractionOptions(granularity="block"))
        htg.validate()
        names = {t.origin for t in htg.leaf_tasks()}
        assert {"a", "b", "c"} <= names
        # pipeline: a -> b -> c dependences exist
        pairs = htg.dependent_pairs()
        a_task = next(t.task_id for t in htg.leaf_tasks() if t.origin == "a")
        c_task = next(t.task_id for t in htg.leaf_tasks() if t.origin == "c")
        assert (a_task, c_task) in pairs

    def test_loop_granularity_creates_chunks(self, pipeline_model):
        htg = extract_htg(pipeline_model, ExtractionOptions(granularity="loop", loop_chunks=4))
        htg.validate()
        chunks = [t for t in htg.leaf_tasks() if t.kind is TaskKind.LOOP_CHUNK]
        assert len(chunks) >= 4
        # chunks of the same parent must not depend on each other
        pairs = htg.dependent_pairs()
        for x in chunks:
            for y in chunks:
                if x.parent == y.parent and x.task_id != y.task_id:
                    assert (x.task_id, y.task_id) not in pairs

    def test_shared_access_annotation(self, pipeline_model):
        htg = extract_htg(pipeline_model)
        for task in htg.leaf_tasks():
            assert task.total_shared_accesses > 0

    def test_edge_payloads_are_buffer_sizes(self, pipeline_model):
        htg = extract_htg(pipeline_model)
        payloads = [e.payload_bytes for e in htg.edges if e.payload_bytes > 0]
        assert payloads
        assert all(p == 16 * 4 for p in payloads)

    def test_critical_path_and_total(self, pipeline_model, platform4):
        htg = extract_htg(pipeline_model)
        model = HardwareCostModel(platform4, 0)
        annotate_htg_wcets(htg, pipeline_model.entry, model)
        cp = htg.critical_path_length()
        assert 0 < cp <= htg.total_wcet() + 1e-9

    def test_invalid_granularity(self, pipeline_model):
        with pytest.raises(ValueError):
            extract_htg(pipeline_model, ExtractionOptions(granularity="bogus"))


class TestCodeLevelWcet:
    def test_wcet_positive_and_monotone_in_size(self, platform4):
        small = small_pipeline(8)
        large = small_pipeline(32)
        model = HardwareCostModel(platform4, 0)
        wcet_small = analyze_function_wcet(small.entry, model).total
        wcet_large = analyze_function_wcet(large.entry, model).total
        assert 0 < wcet_small < wcet_large

    def test_wcet_bounds_actual_cost(self, pipeline_model, platform4):
        """Dynamic cost of any execution must not exceed the code-level WCET."""
        from repro.ir.interpreter import run_function
        from repro.sim.executor import _stats_cost

        model = HardwareCostModel(platform4, 0)
        bound = analyze_function_wcet(pipeline_model.entry, model).total
        rng = np.random.default_rng(0)
        for _ in range(5):
            u = rng.uniform(-10, 10, size=16)
            result = run_function(pipeline_model.entry, pipeline_model.run_inputs({"a.u": u}))
            cost, _ = _stats_cost(result.stats, pipeline_model.entry, model)
            assert cost <= bound + 1e-6

    def test_average_below_worst(self, pipeline_model, platform4):
        model = HardwareCostModel(platform4, 0)
        worst = analyze_function_wcet(pipeline_model.entry, model).total
        average = analyze_function_wcet(pipeline_model.entry, model, average=True).total
        assert average <= worst

    def test_scratchpad_override_reduces_wcet(self, pipeline_model, platform4):
        from repro.ir.program import Storage

        base = analyze_function_wcet(
            pipeline_model.entry, HardwareCostModel(platform4, 0)
        ).total
        override = {"sig_a_y": Storage.SCRATCHPAD, "sig_b_y": Storage.SCRATCHPAD}
        improved = analyze_function_wcet(
            pipeline_model.entry, HardwareCostModel(platform4, 0, override)
        ).total
        assert improved < base

    def test_breakdown_components_sum(self, pipeline_model, platform4):
        breakdown = analyze_function_wcet(pipeline_model.entry, HardwareCostModel(platform4, 0))
        assert breakdown.total == pytest.approx(
            breakdown.compute + breakdown.memory + breakdown.control
        )
        assert breakdown.shared_accesses > 0


class TestIpet:
    def test_ipet_matches_structural_on_straightline(self, platform4):
        fb = FunctionBuilder("straight")
        x = fb.scalar_input("x")
        y = fb.local("y")
        fb.assign(y, x * 2.0 + 1.0)
        fb.assign(y, y + 3.0)
        func = fb.build()
        model = HardwareCostModel(platform4, 0)
        structural = analyze_function_wcet(func, model).total
        ipet = ipet_wcet(func, model).wcet
        assert ipet == pytest.approx(structural, rel=1e-9)

    def test_ipet_close_to_structural_with_loops(self, pipeline_model, platform4):
        model = HardwareCostModel(platform4, 0)
        structural = analyze_function_wcet(pipeline_model.entry, model).total
        ipet = ipet_wcet(pipeline_model.entry, model).wcet
        # IPET charges the loop-exit test once more per loop; both are safe
        # bounds and must lie within a few percent of each other.
        assert ipet >= structural * 0.95
        assert ipet <= structural * 1.10 + 100

    def test_ipet_takes_worst_branch(self, platform4):
        fb = FunctionBuilder("branchy")
        x = fb.scalar_input("x")
        y = fb.local("y")
        with fb.if_then(BinOp(">", x, Const(0.0))):
            fb.assign(y, fb.call("sqrt", x))  # expensive branch
        with fb.orelse():
            fb.assign(y, 1.0)
        func = fb.build()
        model = HardwareCostModel(platform4, 0)
        ipet = ipet_wcet(func, model).wcet
        assert ipet >= model.op_cycles("sqrt")


class TestSystemLevelWcet:
    def _htg(self, pipeline_model, platform):
        htg = extract_htg(pipeline_model, ExtractionOptions(granularity="loop", loop_chunks=2))
        annotate_htg_wcets(htg, pipeline_model.entry, HardwareCostModel(platform, 0))
        return htg

    def test_parallel_bound_not_below_critical_path(self, pipeline_model, platform4):
        htg = self._htg(pipeline_model, platform4)
        mapping = {t.task_id: i % 4 for i, t in enumerate(htg.topological_tasks()) if not t.is_synthetic}
        result = system_level_wcet(
            htg, pipeline_model.entry, platform4, mapping, default_core_order(htg, mapping)
        )
        assert result.makespan >= htg.critical_path_length() - 1e-6

    def test_single_core_has_no_interference(self, pipeline_model, platform4):
        htg = self._htg(pipeline_model, platform4)
        mapping = {t.task_id: 0 for t in htg.leaf_tasks()}
        result = system_level_wcet(
            htg, pipeline_model.entry, platform4, mapping, default_core_order(htg, mapping)
        )
        assert result.interference_cycles == 0.0
        assert result.communication_cycles == 0.0
        assert result.makespan == pytest.approx(sum(result.task_effective_wcet.values()))

    def test_contention_oblivious_is_looser(self, pipeline_model, platform4):
        htg = self._htg(pipeline_model, platform4)
        mapping = {t.task_id: i % 4 for i, t in enumerate(htg.topological_tasks()) if not t.is_synthetic}
        order = default_core_order(htg, mapping)
        precise = system_level_wcet(htg, pipeline_model.entry, platform4, mapping, order)
        naive = contention_oblivious_bound(htg, pipeline_model.entry, platform4, mapping, order)
        assert naive >= precise.makespan - 1e-6

    def test_missing_mapping_rejected(self, pipeline_model, platform4):
        htg = self._htg(pipeline_model, platform4)
        with pytest.raises(SystemWcetError):
            system_level_wcet(htg, pipeline_model.entry, platform4, {}, {})

    def test_interference_grows_with_sharing_cores(self, pipeline_model, platform4):
        htg = self._htg(pipeline_model, platform4)
        leaf = [t.task_id for t in htg.topological_tasks() if not t.is_synthetic]
        mapping_two = {tid: i % 2 for i, tid in enumerate(leaf)}
        mapping_four = {tid: i % 4 for i, tid in enumerate(leaf)}
        r2 = system_level_wcet(
            htg, pipeline_model.entry, platform4, mapping_two, default_core_order(htg, mapping_two)
        )
        r4 = system_level_wcet(
            htg, pipeline_model.entry, platform4, mapping_four, default_core_order(htg, mapping_four)
        )
        assert max(r4.task_contenders.values()) >= max(r2.task_contenders.values())

    def test_evaluate_mapping_wraps_result(self, pipeline_model, platform4):
        htg = self._htg(pipeline_model, platform4)
        mapping = {t.task_id: 0 for t in htg.leaf_tasks()}
        schedule = evaluate_mapping(htg, pipeline_model.entry, platform4, mapping, scheduler="test")
        assert schedule.wcet_bound > 0
        assert schedule.num_cores_used == 1
        util = schedule.utilization()
        assert util[0] == pytest.approx(1.0, abs=1e-6)
