"""Static interference pruning: relation, system-level wiring, certificates.

The load-bearing properties:

* pruning never loosens a bound (differential over every use case and
  seeded random workloads);
* ``static_pruning=False`` is bit-identical to the historical behaviour;
* pruned scalar and vectorised passes agree bit-for-bit;
* the contention certificate checker refutes fabricated disjointness and
  dropped happens-before edges.
"""

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.analysis.certify import (
    build_certificates,
    build_contention_certificate,
    build_fixed_point_certificate,
    check_contention_certificate,
    check_fixed_point_certificate,
)
from repro.analysis.static_mhp import compute_static_mhp
from repro.core.config import ToolchainConfig
from repro.core.pipeline import run_pipeline
from repro.frontend import compile_diagram
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.htg.graph import HierarchicalTaskGraph
from repro.htg.task import Task, TaskKind
from repro.ir import FunctionBuilder
from repro.ir.expressions import ArrayRef, Const, Var
from repro.ir.statements import Assign, Block, For
from repro.ir.types import INT
from repro.scheduling.schedule import default_core_order, evaluate_mapping
from repro.usecases import ALL_USECASES
from repro.usecases.workloads import synthetic_compiled_model
from repro.wcet import HardwareCostModel, annotate_htg_wcets, system_level_wcet
from repro.wcet.cache import WcetAnalysisCache
from repro.wcet.system_level import SystemWcetError, mhp_options

USECASES = ["egpws", "polka", "weaa"]


def build_case(usecase, cores=4, chunks=2, seed=1):
    if usecase == "workloads":
        model = synthetic_compiled_model(num_kernels=6, vector_size=32, seed=seed)
    else:
        builder, _ = ALL_USECASES[usecase]
        model = compile_diagram(builder())
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    mapping = {
        t.task_id: i % platform.num_cores
        for i, t in enumerate(htg.topological_tasks())
        if not t.is_synthetic
    }
    order = default_core_order(htg, mapping)
    return model, htg, platform, mapping, order


def result_fingerprint(result):
    return (
        result.makespan,
        {tid: (iv.start, iv.end) for tid, iv in result.task_intervals.items()},
        result.task_effective_wcet,
        result.task_contenders,
        result.interference_cycles,
        result.communication_cycles,
        result.iterations,
        result.converged,
    )


# ---------------------------------------------------------------------- #
# hand-built fixtures
# ---------------------------------------------------------------------- #
def contending_pair():
    """Two cross-core, unordered tasks whose footprints provably overlap."""
    fb = FunctionBuilder("f")
    buf = fb.shared_array("buf", (8,))
    fb.assign(fb.at(buf, 0), 1.0)
    func = fb.build()
    htg = HierarchicalTaskGraph("h")
    i = Var("i", INT)
    for tid in ("t1", "t2"):
        stmts = Block(
            [For(index=i, lower=Const(0), upper=Const(8),
                 body=Block([Assign(ArrayRef("buf", (i,)), Const(1.0))]))]
        )
        task = htg.add_task(Task(tid, TaskKind.BLOCK, stmts, writes={"buf"}))
        task.shared_accesses = {"buf": 8}
        task.wcet = 100.0
    return func, htg


class TestStaticMhpRelation:
    def test_ordered_pairs_are_pruned(self):
        func, htg = contending_pair()
        htg.add_edge("t1", "t2")
        relation = compute_static_mhp(htg, func, {"t1": 0, "t2": 1})
        assert relation.pruned_ordered == 2
        assert relation.allowed == {"t1": (), "t2": ()}

    def test_same_core_pairs_are_pruned(self):
        func, htg = contending_pair()
        relation = compute_static_mhp(htg, func, {"t1": 0, "t2": 0})
        assert relation.pruned_same_core == 2
        assert relation.kept_pairs == 0

    def test_overlapping_unordered_pair_is_kept(self):
        func, htg = contending_pair()
        relation = compute_static_mhp(htg, func, {"t1": 0, "t2": 1})
        assert relation.allowed == {"t1": ("t2",), "t2": ("t1",)}
        assert relation.kept_pairs == 2

    def test_disjoint_footprints_are_pruned(self):
        fb = FunctionBuilder("f")
        buf = fb.shared_array("buf", (8,))
        fb.assign(fb.at(buf, 0), 1.0)
        func = fb.build()
        htg = HierarchicalTaskGraph("h")
        i = Var("i", INT)
        for tid, (lo, hi) in (("t1", (0, 4)), ("t2", (4, 8))):
            stmts = Block(
                [For(index=i, lower=Const(lo), upper=Const(hi),
                     body=Block([Assign(ArrayRef("buf", (i,)), Const(1.0))]))]
            )
            task = htg.add_task(Task(tid, TaskKind.BLOCK, stmts, writes={"buf"}))
            task.shared_accesses = {"buf": 4}
            task.wcet = 100.0
        relation = compute_static_mhp(htg, func, {"t1": 0, "t2": 1})
        assert relation.pruned_disjoint == 2
        assert relation.allowed == {"t1": (), "t2": ()}

    def test_ordering_through_unmapped_task_is_not_trusted(self):
        # t1 -> mid -> t2 with mid unmapped: the timeline drops both edges,
        # so the relation must NOT treat (t1, t2) as ordered
        func, htg = contending_pair()
        htg.add_task(Task("mid", TaskKind.BLOCK, Block()))
        htg.add_edge("t1", "mid")
        htg.add_edge("mid", "t2")
        relation = compute_static_mhp(htg, func, {"t1": 0, "t2": 1})
        assert relation.pruned_ordered == 0
        assert relation.allowed == {"t1": ("t2",), "t2": ("t1",)}

    def test_footprints_can_be_disabled(self):
        func, htg = contending_pair()
        relation = compute_static_mhp(
            htg, func, {"t1": 0, "t2": 1}, use_footprints=False
        )
        assert relation.footprints == {}
        assert relation.pruned_disjoint == 0


# ---------------------------------------------------------------------- #
# system-level differential: pruned is never looser, off is bit-identical
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("usecase", USECASES)
class TestSystemLevelDifferential:
    def test_pruned_bound_is_never_looser(self, usecase):
        model, htg, platform, mapping, order = build_case(usecase)
        base = system_level_wcet(htg, model.entry, platform, mapping, order)
        pruned = system_level_wcet(
            htg, model.entry, platform, mapping, order, static_pruning=True
        )
        assert pruned.makespan <= base.makespan
        assert pruned.mhp_allowed is not None
        for tid, n in pruned.task_contenders.items():
            assert n <= base.task_contenders[tid]

    def test_pruning_off_is_bit_identical(self, usecase):
        model, htg, platform, mapping, order = build_case(usecase)
        default = system_level_wcet(htg, model.entry, platform, mapping, order)
        explicit_off = system_level_wcet(
            htg, model.entry, platform, mapping, order, static_pruning=False
        )
        assert result_fingerprint(default) == result_fingerprint(explicit_off)
        assert default.mhp_allowed is None and explicit_off.mhp_allowed is None

    def test_pruned_backends_agree_bit_for_bit(self, usecase):
        model, htg, platform, mapping, order = build_case(usecase)
        scalar = system_level_wcet(
            htg, model.entry, platform, mapping, order,
            static_pruning=True, mhp_backend="scalar",
        )
        vector = system_level_wcet(
            htg, model.entry, platform, mapping, order,
            static_pruning=True, mhp_backend="numpy",
        )
        forced_auto = system_level_wcet(
            htg, model.entry, platform, mapping, order,
            static_pruning=True, mhp_backend="auto", vectorise_min_pairs=0,
        )
        assert result_fingerprint(scalar) == result_fingerprint(vector)
        assert result_fingerprint(scalar) == result_fingerprint(forced_auto)


class TestSeededWorkloadsDifferential:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_pruned_bound_is_never_looser(self, seed):
        model, htg, platform, mapping, order = build_case("workloads", seed=seed)
        base = system_level_wcet(htg, model.entry, platform, mapping, order)
        pruned = system_level_wcet(
            htg, model.entry, platform, mapping, order, static_pruning=True
        )
        assert pruned.makespan <= base.makespan


# ---------------------------------------------------------------------- #
# knob resolution: param > ambient > env > default
# ---------------------------------------------------------------------- #
class TestKnobResolution:
    def test_ambient_options_enable_pruning(self):
        model, htg, platform, mapping, order = build_case("weaa")
        with mhp_options(static_pruning=True):
            ambient = system_level_wcet(htg, model.entry, platform, mapping, order)
        assert ambient.mhp_allowed is not None
        # explicit False wins over the ambient True
        with mhp_options(static_pruning=True):
            off = system_level_wcet(
                htg, model.entry, platform, mapping, order, static_pruning=False
            )
        assert off.mhp_allowed is None

    def test_env_knob_controls_vectorise_threshold(self, monkeypatch):
        model, htg, platform, mapping, order = build_case("weaa")
        monkeypatch.setenv("REPRO_MHP_VECTORISE_MIN_PAIRS", "0")
        forced = system_level_wcet(
            htg, model.entry, platform, mapping, order, mhp_backend="auto"
        )
        monkeypatch.setenv("REPRO_MHP_VECTORISE_MIN_PAIRS", "1000000000")
        scalar = system_level_wcet(
            htg, model.entry, platform, mapping, order, mhp_backend="auto"
        )
        assert result_fingerprint(forced) == result_fingerprint(scalar)

    def test_env_knob_rejects_garbage(self, monkeypatch):
        model, htg, platform, mapping, order = build_case("weaa")
        monkeypatch.setenv("REPRO_MHP_VECTORISE_MIN_PAIRS", "many")
        with pytest.raises(SystemWcetError):
            system_level_wcet(htg, model.entry, platform, mapping, order)

    def test_negative_threshold_is_rejected(self):
        model, htg, platform, mapping, order = build_case("weaa")
        with pytest.raises(SystemWcetError):
            system_level_wcet(
                htg, model.entry, platform, mapping, order, vectorise_min_pairs=-1
            )

    def test_config_knobs_are_validated(self):
        with pytest.raises(ValueError):
            ToolchainConfig(static_pruning="yes")
        with pytest.raises(ValueError):
            ToolchainConfig(mhp_vectorise_min_pairs=-5)
        cfg = ToolchainConfig(static_pruning=True, mhp_vectorise_min_pairs=16)
        assert cfg.static_pruning is True
        assert cfg.mhp_vectorise_min_pairs == 16

    def test_ambient_scope_restores_on_exit(self):
        from repro.wcet.system_level import _MHP_OPTIONS

        before = dict(_MHP_OPTIONS)
        with mhp_options(static_pruning=True, vectorise_min_pairs=7):
            assert _MHP_OPTIONS["static_pruning"] is True
            assert _MHP_OPTIONS["vectorise_min_pairs"] == 7
        assert _MHP_OPTIONS == before


# ---------------------------------------------------------------------- #
# result cache round trip
# ---------------------------------------------------------------------- #
class TestResultCacheRoundTrip:
    def test_pruned_results_replay_with_skeleton(self):
        model, htg, platform, mapping, order = build_case("weaa")
        cache = WcetAnalysisCache()
        first = system_level_wcet(
            htg, model.entry, platform, mapping, order,
            cache=cache, static_pruning=True,
        )
        replay = system_level_wcet(
            htg, model.entry, platform, mapping, order,
            cache=cache, static_pruning=True,
        )
        assert result_fingerprint(first) == result_fingerprint(replay)
        assert replay.mhp_allowed == first.mhp_allowed

    def test_pruned_and_unpruned_entries_do_not_collide(self):
        model, htg, platform, mapping, order = build_case("weaa")
        cache = WcetAnalysisCache()
        base = system_level_wcet(
            htg, model.entry, platform, mapping, order, cache=cache
        )
        pruned = system_level_wcet(
            htg, model.entry, platform, mapping, order,
            cache=cache, static_pruning=True,
        )
        base_again = system_level_wcet(
            htg, model.entry, platform, mapping, order, cache=cache
        )
        assert base_again.mhp_allowed is None
        assert result_fingerprint(base_again) == result_fingerprint(base)
        assert pruned.makespan <= base.makespan

    def test_certified_replay_checks_the_contention_certificate(self):
        model, htg, platform, mapping, order = build_case("weaa")
        cache = WcetAnalysisCache()
        system_level_wcet(
            htg, model.entry, platform, mapping, order,
            cache=cache, static_pruning=True, certify=True,
        )
        replay = system_level_wcet(
            htg, model.entry, platform, mapping, order,
            cache=cache, static_pruning=True, certify=True,
        )
        assert replay.mhp_allowed is not None


# ---------------------------------------------------------------------- #
# contention certificate: accept honest, refute tampered
# ---------------------------------------------------------------------- #
class TestContentionCertificate:
    def test_honest_skeleton_is_accepted(self):
        for usecase in USECASES:
            model, htg, platform, mapping, order = build_case(usecase)
            result = system_level_wcet(
                htg, model.entry, platform, mapping, order, static_pruning=True
            )
            cert = build_contention_certificate(result, htg, model.entry)
            report = check_contention_certificate(cert, htg, model.entry)
            assert report.ok, report.summary()
            assert report.checked["exclusions_checked"] > 0

    def test_unpruned_result_cannot_be_certified(self):
        model, htg, platform, mapping, order = build_case("weaa")
        result = system_level_wcet(htg, model.entry, platform, mapping, order)
        with pytest.raises(ValueError):
            build_contention_certificate(result, htg, model.entry)

    def test_fabricated_disjointness_is_refuted(self):
        # the hand-built pair provably contends; a skeleton claiming the
        # exclusion anyway must be rejected
        func, htg = contending_pair()
        mapping = {"t1": 0, "t2": 1}
        result = evaluate_mapping(
            htg, func, generic_predictable_multicore(cores=2), mapping,
            static_pruning=True,
        ).result
        cert = build_contention_certificate(result, htg, func)
        assert cert.allowed["t1"] == ["t2"]
        cert.allowed["t1"] = []  # fabricate: claim t2 never contends with t1
        report = check_contention_certificate(cert, htg, func)
        codes = [f.code for f in report.findings]
        assert "certify.contention.unjustified-exclusion" in codes
        assert report.count("error") >= 1

    def test_dropped_happens_before_edge_is_refuted(self):
        func, htg = contending_pair()
        htg.add_edge("t1", "t2")
        mapping = {"t1": 0, "t2": 1}
        result = evaluate_mapping(
            htg, func, generic_predictable_multicore(cores=2), mapping,
            static_pruning=True,
        ).result
        cert = build_contention_certificate(result, htg, func)
        honest = check_contention_certificate(cert, htg, func)
        assert honest.ok, honest.summary()
        # tamper with the graph: drop the edge that justified the exclusion
        bare = HierarchicalTaskGraph(htg.name, dict(htg.tasks), [])
        report = check_contention_certificate(cert, bare, func)
        codes = [f.code for f in report.findings]
        assert "certify.contention.unjustified-exclusion" in codes

    def test_skeleton_naming_unknown_tasks_is_refuted(self):
        func, htg = contending_pair()
        mapping = {"t1": 0, "t2": 1}
        result = evaluate_mapping(
            htg, func, generic_predictable_multicore(cores=2), mapping,
            static_pruning=True,
        ).result
        cert = build_contention_certificate(result, htg, func)
        cert.allowed["t1"] = ["ghost"]
        report = check_contention_certificate(cert, htg, func)
        assert [f.code for f in report.findings] == ["certify.contention.coverage"]

    def test_missing_allowed_entry_means_all_excluded(self):
        # dropping a task's entry wholesale claims every pair excluded and
        # must be refuted for a contending pair
        func, htg = contending_pair()
        mapping = {"t1": 0, "t2": 1}
        result = evaluate_mapping(
            htg, func, generic_predictable_multicore(cores=2), mapping,
            static_pruning=True,
        ).result
        cert = build_contention_certificate(result, htg, func)
        del cert.allowed["t1"]
        report = check_contention_certificate(cert, htg, func)
        codes = [f.code for f in report.findings]
        assert "certify.contention.unjustified-exclusion" in codes

    def test_serialization_shape(self):
        func, htg = contending_pair()
        mapping = {"t1": 0, "t2": 1}
        result = evaluate_mapping(
            htg, func, generic_predictable_multicore(cores=2), mapping,
            static_pruning=True,
        ).result
        cert = build_contention_certificate(result, htg, func)
        payload = cert.as_dict()
        assert payload["kind"] == "contention"
        assert payload["allowed"] == {"t1": ["t2"], "t2": ["t1"]}


class TestFixedPointCertificateWithSkeleton:
    def test_pruned_fixed_point_is_accepted(self):
        model, htg, platform, mapping, order = build_case("weaa")
        schedule = evaluate_mapping(
            htg, model.entry, platform, mapping, order, static_pruning=True
        )
        cert = build_fixed_point_certificate(
            schedule.result, schedule.order, platform, htg
        )
        assert cert.allowed is not None
        report = check_fixed_point_certificate(cert, htg, platform)
        assert report.ok, report.summary()

    def test_unpruned_cert_serialization_is_unchanged(self):
        model, htg, platform, mapping, order = build_case("weaa")
        schedule = evaluate_mapping(htg, model.entry, platform, mapping, order)
        cert = build_fixed_point_certificate(
            schedule.result, schedule.order, platform, htg
        )
        assert cert.allowed is None
        assert "allowed" not in cert.as_dict()

    def test_chain_includes_contention_certificate_when_pruned(self):
        model, htg, platform, mapping, order = build_case("weaa")
        pruned = evaluate_mapping(
            htg, model.entry, platform, mapping, order, static_pruning=True
        )
        chain = build_certificates(pruned, model.entry, htg, platform)
        assert chain.ok, [str(f) for f in chain.findings()]
        assert chain.contention is not None
        assert len(chain.reports) == 4
        unpruned = evaluate_mapping(htg, model.entry, platform, mapping, order)
        plain = build_certificates(unpruned, model.entry, htg, platform)
        assert plain.contention is None
        assert len(plain.reports) == 3


# ---------------------------------------------------------------------- #
# pipeline integration
# ---------------------------------------------------------------------- #
class TestPipelineIntegration:
    def test_static_pruning_config_tightens_or_matches(self):
        builder, _ = ALL_USECASES["weaa"]
        platform = generic_predictable_multicore()
        base = run_pipeline(builder(), platform, ToolchainConfig())
        pruned = run_pipeline(
            builder(), platform, ToolchainConfig(static_pruning=True)
        )
        assert pruned.schedule.result.makespan <= base.schedule.result.makespan
        assert pruned.schedule.result.mhp_allowed is not None
        assert base.schedule.result.mhp_allowed is None

    def test_pruned_run_certifies_end_to_end(self):
        builder, _ = ALL_USECASES["weaa"]
        platform = generic_predictable_multicore()
        result = run_pipeline(
            builder(), platform, ToolchainConfig(static_pruning=True, certify=True)
        )
        chain = result.artifacts["certificates"]
        assert chain is not None and chain.ok
        assert chain.contention is not None
