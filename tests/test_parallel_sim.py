"""Tests for the explicit parallel program model and the timing simulator."""

import numpy as np
import pytest

from repro.adl.platforms import generic_predictable_multicore, kit_leon3_inoc
from repro.frontend import compile_diagram
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.ir.interpreter import run_function
from repro.parallel import build_parallel_program, parallel_program_to_c
from repro.scheduling import WcetAwareListScheduler, sequential_schedule
from repro.sim import simulate_parallel_program
from repro.usecases import build_polka_diagram, polka_test_inputs
from repro.wcet import HardwareCostModel, annotate_htg_wcets


def build_case(platform, chunks=2):
    diagram = build_polka_diagram(pixels=32)
    model = compile_diagram(diagram)
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    schedule = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
    return model, htg, schedule


@pytest.fixture(scope="module")
def platform():
    return generic_predictable_multicore(cores=4)


@pytest.fixture(scope="module")
def case(platform):
    return build_case(platform)


class TestParallelProgram:
    def test_build_and_validate(self, platform, case):
        model, htg, schedule = case
        program = build_parallel_program(htg, model.entry, platform, schedule)
        program.validate(htg)
        assert set(program.core_programs) == set(schedule.order)

    def test_cross_core_edges_have_sync(self, platform, case):
        model, htg, schedule = case
        program = build_parallel_program(htg, model.entry, platform, schedule)
        cross = [
            e for e in htg.edges
            if schedule.mapping[e.src] != schedule.mapping[e.dst]
        ]
        # one signal and one wait per cross-core edge
        assert program.num_sync_ops == 2 * len(cross)

    def test_memory_map_is_disjoint_and_within_capacity(self, platform, case):
        model, htg, schedule = case
        program = build_parallel_program(htg, model.entry, platform, schedule)
        regions = sorted(program.memory_map.values())
        for (a_start, a_size), (b_start, _) in zip(regions, regions[1:]):
            assert a_start + a_size <= b_start
        total = program.shared_footprint_bytes()
        assert total <= platform.shared_memory.size_bytes

    def test_codegen_contains_cores_and_sync(self, platform, case):
        model, htg, schedule = case
        program = build_parallel_program(htg, model.entry, platform, schedule)
        text = parallel_program_to_c(program, htg)
        assert "core0_main" in text
        assert "shared memory map" in text
        if program.num_sync_ops:
            assert "while (!" in text

    def test_sequential_program_has_no_sync(self, platform, case):
        model, htg, _ = case
        schedule = sequential_schedule(htg, model.entry, platform)
        program = build_parallel_program(htg, model.entry, platform, schedule)
        assert program.num_sync_ops == 0
        assert program.total_comm_bytes == 0


class TestSimulator:
    def test_functional_result_matches_reference(self, platform, case):
        model, htg, schedule = case
        program = build_parallel_program(htg, model.entry, platform, schedule)
        inputs = model.run_inputs(polka_test_inputs(pixels=32, seed=1))
        sim = simulate_parallel_program(program, htg, model.entry, platform, inputs)
        reference = run_function(model.entry, inputs)
        for name in model.outputs:
            ref_value = reference.env[name]
            sim_value = sim.env[name]
            np.testing.assert_allclose(np.asarray(sim_value), np.asarray(ref_value), rtol=1e-9)

    def test_measured_makespan_never_exceeds_bound(self, platform, case):
        model, htg, schedule = case
        program = build_parallel_program(htg, model.entry, platform, schedule)
        for seed in range(4):
            inputs = model.run_inputs(polka_test_inputs(pixels=32, seed=seed, stressed=seed % 2 == 0))
            sim = simulate_parallel_program(program, htg, model.entry, platform, inputs)
            assert sim.makespan <= schedule.wcet_bound + 1e-6

    def test_dynamic_contention_mode_runs(self, platform, case):
        model, htg, schedule = case
        program = build_parallel_program(htg, model.entry, platform, schedule)
        inputs = model.run_inputs(polka_test_inputs(pixels=32, seed=2))
        sim = simulate_parallel_program(
            program, htg, model.entry, platform, inputs, contention="dynamic"
        )
        assert sim.makespan > 0
        with pytest.raises(ValueError):
            simulate_parallel_program(program, htg, model.entry, platform, inputs, contention="nope")

    def test_noc_platform_end_to_end(self):
        platform = kit_leon3_inoc(mesh_width=2, mesh_height=2, cores_per_tile=1)
        model, htg, schedule = build_case(platform, chunks=2)
        program = build_parallel_program(htg, model.entry, platform, schedule)
        inputs = model.run_inputs(polka_test_inputs(pixels=32, seed=3))
        sim = simulate_parallel_program(program, htg, model.entry, platform, inputs)
        assert sim.makespan <= schedule.wcet_bound + 1e-6
