"""System-level fixed point: MHP backend equivalence and the safety fallback.

Covers the PR 2 bugfixes and the vectorised interference engine:

* ``SystemWcetResult.converged`` must be truthful (the seed reported
  ``converged or True``, hiding the safety fallback from every caller);
* the fallback must report contender counts consistent with the worst-case
  effective WCETs it charges;
* the vectorised MHP pass must match the scalar double loop bit-for-bit on
  every use case, end to end.
"""

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.frontend import compile_diagram
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.scheduling.schedule import default_core_order
from repro.usecases import ALL_USECASES
from repro.usecases.workloads import synthetic_compiled_model
from repro.wcet import (
    HardwareCostModel,
    analyze_task_wcet,
    annotate_htg_wcets,
    system_level_wcet,
)
from repro.wcet.system_level import (
    contention_oblivious_bound,
    mhp_contenders_scalar,
    mhp_contenders_vectorised,
)

USECASES = ["egpws", "polka", "weaa", "workloads"]


def build_case(usecase, cores=4, chunks=2):
    if usecase == "workloads":
        model = synthetic_compiled_model(num_kernels=6, vector_size=32, seed=1)
    else:
        builder, _ = ALL_USECASES[usecase]
        model = compile_diagram(builder())
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    mapping = {
        t.task_id: i % platform.num_cores
        for i, t in enumerate(htg.topological_tasks())
        if not t.is_synthetic
    }
    order = default_core_order(htg, mapping)
    return model, htg, platform, mapping, order


def result_fingerprint(result):
    return (
        result.makespan,
        {tid: (iv.start, iv.end) for tid, iv in result.task_intervals.items()},
        result.task_effective_wcet,
        result.task_contenders,
        result.interference_cycles,
        result.communication_cycles,
        result.iterations,
        result.converged,
    )


@pytest.mark.parametrize("usecase", USECASES)
class TestMhpBackendsIdentical:
    def test_end_to_end_bit_for_bit(self, usecase):
        model, htg, platform, mapping, order = build_case(usecase)
        scalar = system_level_wcet(
            htg, model.entry, platform, mapping, order, mhp_backend="scalar"
        )
        vector = system_level_wcet(
            htg, model.entry, platform, mapping, order, mhp_backend="numpy"
        )
        auto = system_level_wcet(
            htg, model.entry, platform, mapping, order, mhp_backend="auto"
        )
        assert result_fingerprint(scalar) == result_fingerprint(vector)
        assert result_fingerprint(scalar) == result_fingerprint(auto)

    def test_contender_pass_bit_for_bit(self, usecase):
        """The raw MHP passes agree on the converged timeline too."""
        model, htg, platform, mapping, order = build_case(usecase)
        result = system_level_wcet(htg, model.entry, platform, mapping, order)
        leaf_ids = [t.task_id for t in htg.leaf_tasks()]
        sharers = [
            t.task_id for t in htg.leaf_tasks() if t.total_shared_accesses > 0
        ]
        scalar = mhp_contenders_scalar(leaf_ids, sharers, mapping, result.task_intervals)
        vector = mhp_contenders_vectorised(leaf_ids, sharers, mapping, result.task_intervals)
        assert scalar == vector


class TestNonConvergenceFallback:
    """A contention-heavy HTG whose interference keeps shifting windows.

    The fixture needs 4 fixed-point iterations to settle (inflating a task
    moves its successors' windows, which keeps changing the contention sets),
    so capping the iteration count exercises the all-cores-contend fallback.
    """

    @pytest.fixture(scope="class")
    def case(self):
        model = synthetic_compiled_model(
            num_kernels=60, vector_size=32, dependency_probability=0.03, seed=1
        )
        htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=1))
        platform = generic_predictable_multicore(cores=8)
        annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
        mapping = {
            t.task_id: i % 8
            for i, t in enumerate(htg.topological_tasks())
            if not t.is_synthetic
        }
        order = default_core_order(htg, mapping)
        return model, htg, platform, mapping, order

    def test_fixture_contention_keeps_changing(self, case):
        model, htg, platform, mapping, order = case
        settled = system_level_wcet(htg, model.entry, platform, mapping, order)
        assert settled.converged is True
        # every iteration before the fixed point saw a different contention
        # state, otherwise the loop would have stopped earlier
        assert settled.iterations >= 4

    def test_converged_flag_is_truthful(self, case):
        model, htg, platform, mapping, order = case
        capped = system_level_wcet(
            htg, model.entry, platform, mapping, order, max_iterations=2
        )
        assert capped.converged is False
        assert capped.iterations == 2

    def test_fallback_contenders_consistent_with_wcets(self, case):
        model, htg, platform, mapping, order = case
        capped = system_level_wcet(
            htg, model.entry, platform, mapping, order, max_iterations=2
        )
        worst_contenders = platform.num_cores - 1
        models = {
            core: HardwareCostModel(platform, core) for core in set(mapping.values())
        }
        for tid, reported in capped.task_contenders.items():
            assert reported == worst_contenders
            breakdown = analyze_task_wcet(htg.task(tid), model.entry, models[mapping[tid]])
            expected = breakdown.total + breakdown.shared_accesses * models[
                mapping[tid]
            ].shared_access_penalty(worst_contenders)
            assert capped.task_effective_wcet[tid] == expected

    def test_fallback_bound_dominates_converged_bound(self, case):
        model, htg, platform, mapping, order = case
        settled = system_level_wcet(htg, model.entry, platform, mapping, order)
        capped = system_level_wcet(
            htg, model.entry, platform, mapping, order, max_iterations=2
        )
        assert capped.makespan >= settled.makespan
        for tid in settled.task_effective_wcet:
            assert capped.task_effective_wcet[tid] >= settled.task_effective_wcet[tid]

    def test_fallback_identical_across_backends(self, case):
        model, htg, platform, mapping, order = case
        scalar = system_level_wcet(
            htg, model.entry, platform, mapping, order, max_iterations=2,
            mhp_backend="scalar",
        )
        vector = system_level_wcet(
            htg, model.entry, platform, mapping, order, max_iterations=2,
            mhp_backend="numpy",
        )
        assert result_fingerprint(scalar) == result_fingerprint(vector)

    def test_fallback_equals_oblivious_bound(self, case):
        """The fallback assumes maximal contention -- exactly the
        contention-oblivious model.  Both bounds price edges through the
        shared helper, so their makespans must coincide byte-for-byte."""
        model, htg, platform, mapping, order = case
        capped = system_level_wcet(
            htg, model.entry, platform, mapping, order, max_iterations=2
        )
        oblivious = contention_oblivious_bound(htg, model.entry, platform, mapping, order)
        assert capped.makespan == oblivious
