"""Tests for the IR verifier, the CFG validation hooks and the lint CLI."""

import json
import types

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.analysis import verify_function
from repro.cli import main
from repro.core.config import ToolchainConfig
from repro.core.pipeline import PipelineError, run_pipeline
from repro.ir import FunctionBuilder
from repro.ir.cfg import EDGE_KINDS, _CFGBuilder, build_cfg
from repro.ir.loops import describe_unbounded_loops
from repro.ir.types import INT
from repro.model import Diagram
from repro.transforms.registry import PassContext, available_passes, get_pass


def clean_function():
    fb = FunctionBuilder("clean")
    x = fb.input_array("x", (8,))
    y = fb.output_array("y", (8,))
    with fb.loop("i", 0, 8) as i:
        fb.assign(fb.at(y, i), fb.at(x, i) * 2.0)
    return fb.build()


def unbounded_function():
    fb = FunctionBuilder("badloop")
    m = fb.scalar_input("m", INT)
    y = fb.output_array("y", (4,))
    with fb.loop("i", 0, m) as i:
        fb.assign(fb.at(y, 0), 1.0)
    return fb.build(validate=False)


# ---------------------------------------------------------------------- #
# verifier
# ---------------------------------------------------------------------- #
class TestVerifyFunction:
    def test_clean_function_has_no_findings(self):
        report = verify_function(clean_function())
        assert report.ok
        assert report.checked["loops_bounded"] == 1
        assert report.checked["blocks_checked"] > 0

    def test_use_before_def(self):
        fb = FunctionBuilder("ubd")
        y = fb.output_array("y", (4,))
        t = fb.local("t")
        fb.assign(fb.at(y, 0), t)
        report = verify_function(fb.build())
        assert "ir.use-before-def" in [f.code for f in report.findings]
        assert report.count("error") == 1

    def test_dead_store_is_a_warning(self):
        fb = FunctionBuilder("ds")
        y = fb.output_array("y", (4,))
        acc = fb.local("acc")
        fb.assign(acc, 1.0)
        fb.assign(fb.at(y, 0), 2.0)
        report = verify_function(fb.build())
        codes = {f.code: f.severity for f in report.findings}
        assert codes.get("ir.dead-store") == "warning"
        assert report.count("error") == 0

    def test_unreferenced_local_is_a_warning(self):
        fb = FunctionBuilder("unref")
        y = fb.output_array("y", (4,))
        fb.local("ghost")
        fb.assign(fb.at(y, 0), 1.0)
        report = verify_function(fb.build())
        assert "ir.unused-variable" in [f.code for f in report.findings]

    def test_unbounded_loop_is_named(self):
        report = verify_function(unbounded_function())
        finding = next(f for f in report.findings if f.code == "ir.unbounded-loop")
        assert finding.subject == "loop over 'i'"
        assert finding.function == "badloop"


class TestVerifierPass:
    def test_registered(self):
        assert "ir_verifier" in available_passes()

    def test_reports_without_mutating(self):
        entry = get_pass("ir_verifier")
        verifier = entry.factory(PassContext(platform=None, config=None, model=None))
        func = clean_function()
        before = func.body.stmts
        report = verifier.run(func)
        assert report.changed is False
        assert report.details["findings"] == 0
        assert func.body.stmts is before

    def test_surfaces_first_finding(self):
        fb = FunctionBuilder("bad")
        y = fb.output_array("y", (4,))
        t = fb.local("t")
        fb.assign(fb.at(y, 0), t)
        verifier = get_pass("ir_verifier").factory(
            PassContext(platform=None, config=None, model=None)
        )
        report = verifier.run(fb.build())
        assert report.details["errors"] == 1
        assert "use-before-def" in report.details["first_finding"]


# ---------------------------------------------------------------------- #
# CFG validation and stable edge keys
# ---------------------------------------------------------------------- #
class TestCfgEdges:
    def test_unknown_edge_kind_is_rejected(self):
        builder = _CFGBuilder("f")
        a, b = builder.new_block("a"), builder.new_block("b")
        with pytest.raises(ValueError, match="unknown CFG edge kind"):
            builder.edge(a, b, "sideways")

    def test_all_builtin_kinds_are_accepted(self):
        builder = _CFGBuilder("f")
        a, b = builder.new_block("a"), builder.new_block("b")
        for kind in EDGE_KINDS:
            builder.edge(a, b, kind)
        assert len(builder.cfg.edges) == len(EDGE_KINDS)

    def test_edge_keys_are_stable_across_rebuilds(self):
        keys1 = [e.key for e in build_cfg(clean_function()).edges]
        keys2 = [e.key for e in build_cfg(clean_function()).edges]
        assert keys1 == keys2
        assert len(set(keys1)) == len(keys1)
        for src, dst, kind in keys1:
            assert isinstance(src, int) and isinstance(dst, int)
            assert kind in EDGE_KINDS


# ---------------------------------------------------------------------- #
# front-end loop-bound gate
# ---------------------------------------------------------------------- #
class TestFrontendGate:
    def test_describe_unbounded_loops_clean(self):
        assert describe_unbounded_loops(clean_function()) == []

    def test_describe_unbounded_loops_names_function_and_loop(self):
        problems = describe_unbounded_loops(unbounded_function())
        assert len(problems) == 1
        assert "'badloop'" in problems[0]
        assert "loop over 'i'" in problems[0]

    def test_pipeline_rejects_unbounded_model(self, monkeypatch):
        import repro.core.pipeline as pipeline_mod

        fake_model = types.SimpleNamespace(entry=unbounded_function())
        monkeypatch.setattr(pipeline_mod, "compile_diagram", lambda d: fake_model)
        with pytest.raises(PipelineError) as exc:
            run_pipeline(
                Diagram("d"), generic_predictable_multicore(), ToolchainConfig()
            )
        message = str(exc.value)
        assert "derivable worst-case trip count" in message
        assert "loop over 'i'" in message


# ---------------------------------------------------------------------- #
# lint CLI
# ---------------------------------------------------------------------- #
CLEAN_MODULE = """\
from repro.model import Diagram, library


def build_model():
    d = Diagram("tiny")
    d.add_block(library.gain("a", 2.0, size=8))
    d.add_block(library.saturation("b", 0.0, 10.0, size=8))
    d.connect("a", "y", "b", "u")
    d.mark_input("a", "u")
    d.mark_output("b", "y")
    return d
"""

BROKEN_MODULE = """\
from repro.core.exceptions import ToolchainError


def build_model():
    raise ToolchainError("deliberately broken model")
"""


class TestLintCli:
    def test_unknown_target_is_a_usage_error(self, capsys):
        assert main(["lint", "no_such_usecase"]) == 2
        assert "unknown lint target" in capsys.readouterr().err

    def test_module_without_build_model_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "empty.py"
        path.write_text("x = 1\n")
        assert main(["lint", str(path)]) == 2
        assert "build_model" in capsys.readouterr().err

    def test_clean_model_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "tiny.py"
        path.write_text(CLEAN_MODULE)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "0 finding(s)" in out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text(BROKEN_MODULE)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "pipeline.error" in out

    def test_json_report(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text(BROKEN_MODULE)
        assert main(["lint", "--json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == 1
        record = payload["targets"][0]
        assert record["ok"] is False
        assert record["reports"][0]["findings"][0]["code"] == "pipeline.error"
