"""Adversarial certificates: every checker rejects a seeded tamper.

Each test forges exactly one plausible-looking corruption of a genuine
result -- a shifted start time, a bumped LP edge count, an understated
effective WCET, a hand-edited cache entry -- and asserts the matching
checker refutes it with the *named* finding, not a crash or a silent pass.
"""

import json

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.analysis.certify import (
    CertificationError,
    build_fixed_point_certificate,
    build_ipet_certificate,
    build_schedule_certificate,
    check_fixed_point_certificate,
    check_ipet_certificate,
    check_schedule_certificate,
)
from repro.htg.extraction import ExtractionOptions, extract_htg
from repro.scheduling.schedule import default_core_order, evaluate_mapping
from repro.usecases.workloads import synthetic_compiled_model
from repro.utils.intervals import Interval
from repro.wcet.cache import CACHE_SCHEMA_VERSION, WcetAnalysisCache
from repro.wcet.code_level import annotate_htg_wcets
from repro.wcet.hardware_model import HardwareCostModel
from repro.wcet.ipet import ipet_wcet
from repro.wcet.system_level import system_level_wcet


def mapped_case(cores=3, seed=7):
    model = synthetic_compiled_model(num_kernels=6, vector_size=32, seed=seed)
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=2))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    mapping = {
        t.task_id: i % cores
        for i, t in enumerate(htg.topological_tasks())
        if not t.is_synthetic
    }
    return model, htg, platform, mapping, default_core_order(htg, mapping)


@pytest.fixture(scope="module")
def case():
    return mapped_case()


@pytest.fixture(scope="module")
def schedule(case):
    model, htg, platform, mapping, order = case
    return evaluate_mapping(htg, model.entry, platform, mapping, order)


def codes(report):
    return {f.code for f in report.findings if f.severity == "error"}


# ---------------------------------------------------------------------- #
# schedule certificate
# ---------------------------------------------------------------------- #
class TestScheduleTamper:
    def test_genuine_schedule_accepted(self, case, schedule):
        _, htg, platform, _, _ = case
        cert = build_schedule_certificate(schedule, htg, platform)
        assert check_schedule_certificate(cert, htg, platform).ok

    def test_shifted_start_time_rejected(self, case, schedule):
        """Pull the second task on some core into its predecessor's window."""
        _, htg, platform, _, _ = case
        cert = build_schedule_certificate(schedule, htg, platform)
        core, tids = next(
            (c, ts) for c, ts in cert.order.items() if len(ts) >= 2
        )
        victim = tids[1]
        length = cert.finishes[victim] - cert.starts[victim]
        cert.starts[victim] = cert.starts[tids[0]]  # overlap the predecessor
        cert.finishes[victim] = cert.starts[victim] + length
        report = check_schedule_certificate(cert, htg, platform)
        assert "certify.schedule.core-overlap" in codes(report)

    def test_shrunk_bound_rejected(self, case, schedule):
        _, htg, platform, _, _ = case
        cert = build_schedule_certificate(schedule, htg, platform)
        cert.wcet_bound *= 0.9
        report = check_schedule_certificate(cert, htg, platform)
        assert codes(report) == {"certify.schedule.bound-mismatch"}

    def test_cheapened_comm_delay_rejected(self, case, schedule):
        _, htg, platform, _, _ = case
        cert = build_schedule_certificate(schedule, htg, platform)
        assert cert.edge_delays, "case must have at least one cross-core edge"
        key = next(k for k, v in cert.edge_delays.items() if v > 0)
        cert.edge_delays[key] = 0.0
        report = check_schedule_certificate(cert, htg, platform)
        assert "certify.schedule.comm-latency-mismatch" in codes(report)

    def test_dropped_task_rejected(self, case, schedule):
        _, htg, platform, _, _ = case
        cert = build_schedule_certificate(schedule, htg, platform)
        victim = next(iter(cert.mapping))
        del cert.mapping[victim]
        report = check_schedule_certificate(cert, htg, platform)
        assert "certify.schedule.mapping-coverage" in codes(report)


# ---------------------------------------------------------------------- #
# IPET certificate
# ---------------------------------------------------------------------- #
class TestIpetTamper:
    @pytest.fixture(scope="class")
    def ipet(self, case):
        model, _, platform, _, _ = case
        result = ipet_wcet(model.entry, HardwareCostModel(platform, 0))
        assert result.duals is not None
        return model.entry, result

    def test_genuine_solution_accepted(self, ipet):
        function, result = ipet
        cert = build_ipet_certificate(result, function.name)
        report = check_ipet_certificate(cert, function=function)
        assert report.ok, [str(f) for f in report.findings]

    def test_bumped_edge_count_rejected(self, ipet):
        """+1 on one LP count breaks conservation, not just the objective."""
        function, result = ipet
        cert = build_ipet_certificate(result, function.name)
        key = max(cert.edge_counts, key=cert.edge_counts.get)
        cert.edge_counts[key] += 1.0
        report = check_ipet_certificate(cert, function=function)
        found = codes(report)
        assert found & {
            "certify.ipet.flow-conservation", "certify.ipet.unit-flow",
        }
        assert "certify.ipet.objective-mismatch" in found

    def test_inflated_wcet_rejected_by_objective_and_duality(self, ipet):
        function, result = ipet
        cert = build_ipet_certificate(result, function.name)
        cert.wcet *= 2.0
        report = check_ipet_certificate(cert, function=function)
        assert "certify.ipet.objective-mismatch" in codes(report)
        assert "certify.ipet.duality-gap" in codes(report)

    def test_consistent_suboptimal_witness_fails_duality(self, ipet):
        """Scale counts AND wcet consistently: feasibility checks pass, but
        the duals refute the doctored optimum -- this is exactly the attack
        the optimality witness exists for."""
        function, result = ipet
        cert = build_ipet_certificate(result, function.name)
        # shrink the claimed bound and zero every count (a feasible flow of
        # zero paths is conservation-consistent except for unit flow, so
        # tamper only the bound while keeping the true counts)
        cert.wcet -= 10.0
        cert.duals = dict(cert.duals)
        report = check_ipet_certificate(cert, function=function)
        assert "certify.ipet.duality-gap" in codes(report)

    def test_forgotten_loop_bound_rejected(self, ipet):
        function, result = ipet
        cert = build_ipet_certificate(result, function.name)
        assert cert.loop_bounds, "case must contain loops"
        header = next(iter(cert.loop_bounds))
        del cert.loop_bounds[header]
        report = check_ipet_certificate(cert, function=function)
        assert "certify.ipet.unbounded-loop" in codes(report)

    def test_edge_set_mismatch_short_circuits(self, ipet):
        function, result = ipet
        cert = build_ipet_certificate(result, function.name)
        cert.edge_counts[(9999, 9998, "jump")] = 1.0
        report = check_ipet_certificate(cert, function=function)
        assert codes(report) == {"certify.ipet.edge-set-mismatch"}


# ---------------------------------------------------------------------- #
# fixed-point certificate
# ---------------------------------------------------------------------- #
class TestFixedPointTamper:
    def test_genuine_fixed_point_accepted(self, case, schedule):
        _, htg, platform, _, order = case
        cert = build_fixed_point_certificate(schedule.result, order, platform, htg)
        report = check_fixed_point_certificate(cert, htg, platform)
        assert report.ok, [str(f) for f in report.findings]

    def test_understated_response_time_rejected(self, case, schedule):
        """Shave one task's effective WCET (and keep its window consistent):
        the re-applied interference equations must refute it."""
        _, htg, platform, _, order = case
        cert = build_fixed_point_certificate(schedule.result, order, platform, htg)
        victim = next(t for t in cert.base if cert.base[t] > 2)
        cert.effective[victim] = cert.base[victim] - 1.0
        cert.finishes[victim] = cert.starts[victim] + cert.effective[victim]
        report = check_fixed_point_certificate(cert, htg, platform)
        assert "certify.fixed-point.effective-below-base" in codes(report)

    def test_shaved_interference_rejected(self, case, schedule):
        _, htg, platform, _, order = case
        cert = build_fixed_point_certificate(schedule.result, order, platform, htg)
        victim = next(
            (t for t in cert.effective if cert.effective[t] > cert.base[t]),
            None,
        )
        assert victim is not None, "case must have contended tasks"
        shaved = (cert.base[victim] + cert.effective[victim]) / 2.0
        cert.effective[victim] = shaved
        cert.finishes[victim] = cert.starts[victim] + shaved
        report = check_fixed_point_certificate(cert, htg, platform)
        assert "certify.fixed-point.not-post-fixed-point" in codes(report)

    def test_early_start_rejected(self, case, schedule):
        _, htg, platform, _, order = case
        cert = build_fixed_point_certificate(schedule.result, order, platform, htg)
        victim = max(cert.starts, key=cert.starts.get)
        assert cert.starts[victim] > 0
        length = cert.finishes[victim] - cert.starts[victim]
        cert.starts[victim] = 0.0
        cert.finishes[victim] = length
        report = check_fixed_point_certificate(cert, htg, platform)
        assert "certify.fixed-point.start-inconsistent" in codes(report)

    def test_understated_makespan_rejected(self, case, schedule):
        _, htg, platform, _, order = case
        cert = build_fixed_point_certificate(schedule.result, order, platform, htg)
        cert.makespan *= 0.5
        report = check_fixed_point_certificate(cert, htg, platform)
        assert "certify.fixed-point.makespan-understated" in codes(report)


# ---------------------------------------------------------------------- #
# cache certification: hand-edited entries are caught at replay
# ---------------------------------------------------------------------- #
class TestCacheTamper:
    def _prime(self, tmp_path):
        model, htg, platform, mapping, order = mapped_case(seed=11)
        cache = WcetAnalysisCache.open(tmp_path / "cache")
        honest = system_level_wcet(
            htg, model.entry, platform, mapping, order, cache=cache
        )
        cache.flush()
        return model, htg, platform, mapping, order, honest

    def _tamper_shard(self, tmp_path, mutate):
        vdir = tmp_path / "cache" / f"v{CACHE_SCHEMA_VERSION}"
        shard = next(vdir.glob("sys-entries*.jsonl"))
        records = [json.loads(line) for line in shard.read_text().splitlines()]
        mutate(records[0])
        shard.write_text("\n".join(json.dumps(r) for r in records) + "\n")

    def test_untampered_replay_certifies_clean(self, tmp_path):
        model, htg, platform, mapping, order, honest = self._prime(tmp_path)
        replay = system_level_wcet(
            htg, model.entry, platform, mapping, order,
            cache=WcetAnalysisCache.open(tmp_path / "cache"), certify=True,
        )
        assert replay.makespan == honest.makespan

    def test_tampered_entry_raises_on_certified_replay(self, tmp_path):
        model, htg, platform, mapping, order, _ = self._prime(tmp_path)

        def shave_response_time(record):
            tid = max(record["tasks"], key=lambda t: record["tasks"][t][1])
            row = record["tasks"][tid]
            row[1] -= 1.0  # finish 1 cycle early: length no longer matches
            record["makespan"] = max(r[1] for r in record["tasks"].values())

        self._tamper_shard(tmp_path, shave_response_time)
        with pytest.raises(CertificationError) as excinfo:
            system_level_wcet(
                htg, model.entry, platform, mapping, order,
                cache=WcetAnalysisCache.open(tmp_path / "cache"), certify=True,
            )
        assert excinfo.value.report is not None
        assert "certify.fixed-point.interval-length" in codes(excinfo.value.report)

    def test_tampered_entry_is_silently_served_without_certify(self, tmp_path):
        """The certify knob is the only line of defence: document that a
        plain replay trusts the cache (this is why CI runs with certify)."""
        model, htg, platform, mapping, order, honest = self._prime(tmp_path)

        def understate_makespan(record):
            record["makespan"] = record["makespan"] * 0.5

        self._tamper_shard(tmp_path, understate_makespan)
        replay = system_level_wcet(
            htg, model.entry, platform, mapping, order,
            cache=WcetAnalysisCache.open(tmp_path / "cache"),
        )
        assert replay.makespan == honest.makespan * 0.5

    def test_understated_cached_makespan_caught(self, tmp_path):
        model, htg, platform, mapping, order, _ = self._prime(tmp_path)
        self._tamper_shard(
            tmp_path, lambda record: record.update(makespan=record["makespan"] * 0.5)
        )
        with pytest.raises(CertificationError) as excinfo:
            system_level_wcet(
                htg, model.entry, platform, mapping, order,
                cache=WcetAnalysisCache.open(tmp_path / "cache"), certify=True,
            )
        assert "certify.fixed-point.makespan-understated" in codes(excinfo.value.report)


# ---------------------------------------------------------------------- #
# tampering an analysed Schedule end to end
# ---------------------------------------------------------------------- #
class TestScheduleObjectTamper:
    def test_moved_interval_refutes_schedule_certify(self, case):
        model, htg, platform, mapping, order = case
        schedule = evaluate_mapping(htg, model.entry, platform, mapping, order)
        victim = max(
            schedule.result.task_intervals,
            key=lambda t: schedule.result.task_intervals[t].start,
        )
        old = schedule.result.task_intervals[victim]
        schedule.result.task_intervals[victim] = Interval(
            0.0, old.end - old.start
        )
        report = schedule.certify(htg, platform)
        assert not report.ok
        assert codes(report)  # at least one error-severity refutation
