"""End-to-end tests: the ARGO tool chain on the three paper use cases."""

import pytest

from repro.adl.platforms import (
    generic_predictable_multicore,
    kit_leon3_inoc,
    recore_xentium_like,
)
from repro.core import ArgoToolchain, ToolchainConfig, ToolchainError, toolchain_summary
from repro.core.feedback import CrossLayerFeedback
from repro.core.reporting import bottleneck_report
from repro.usecases import (
    ALL_USECASES,
    build_egpws_diagram,
    build_polka_diagram,
    build_weaa_diagram,
    egpws_test_inputs,
    polka_test_inputs,
    weaa_test_inputs,
)
from repro.usecases.workloads import random_pipeline_diagram


@pytest.fixture(scope="module")
def platform():
    return generic_predictable_multicore(cores=4)


class TestUseCaseModels:
    def test_egpws_alerts_on_hazardous_terrain(self):
        d = build_egpws_diagram(lookahead=32)
        hazard = d.simulate(steps=1, input_provider=egpws_test_inputs(32, seed=1, hazardous=True))[0]
        assert hazard["alert.y"] == 1.0
        d.reset()
        safe = d.simulate(steps=1, input_provider=egpws_test_inputs(32, seed=1, hazardous=False))[0]
        assert safe["alert.y"] == 0.0
        assert safe["min_clearance.y"] > hazard["min_clearance.y"]

    def test_weaa_detects_encounter(self):
        d = build_weaa_diagram(horizon=16)
        conflict = d.simulate(steps=1, input_provider=weaa_test_inputs(16, seed=2, encounter=True))[0]
        assert conflict["conflict.y"] == 1.0
        assert abs(conflict["evasion_cmd.y"]) <= 1.0 + 1e-9
        d.reset()
        calm = d.simulate(steps=1, input_provider=weaa_test_inputs(16, seed=2, encounter=False))[0]
        assert calm["severity.y"] <= conflict["severity.y"]

    def test_polka_rejects_stressed_glass(self):
        d = build_polka_diagram(pixels=64)
        bad = d.simulate(steps=1, input_provider=polka_test_inputs(64, seed=3, stressed=True))[0]
        good_diagram = build_polka_diagram(pixels=64)
        good = good_diagram.simulate(
            steps=1, input_provider=polka_test_inputs(64, seed=3, stressed=False)
        )[0]
        assert bad["reject.y"] == 1.0
        assert good["reject.y"] == 0.0
        assert bad["defect_count.y"] > good["defect_count.y"]

    def test_usecase_registry_complete(self):
        assert set(ALL_USECASES) == {"egpws", "weaa", "polka"}

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            build_egpws_diagram(lookahead=2)
        with pytest.raises(ValueError):
            build_weaa_diagram(horizon=2)
        with pytest.raises(ValueError):
            build_polka_diagram(pixels=2)


class TestToolchainEndToEnd:
    @pytest.mark.parametrize("usecase", ["egpws", "weaa", "polka"])
    def test_flow_produces_bound_and_speedup(self, platform, usecase):
        builder, inputs_fn = ALL_USECASES[usecase]
        toolchain = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2))
        result = toolchain.run(builder())
        assert result.system_wcet > 0
        assert result.sequential_wcet > 0
        assert result.wcet_speedup >= 0.9  # parallel bound should not explode
        # simulated execution respects the bound and produces sane outputs
        sim = toolchain.simulate(result, inputs_fn())
        assert sim.makespan <= result.system_wcet + 1e-6

    def test_summary_and_bottleneck_report(self, platform):
        toolchain = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2))
        result = toolchain.run(build_polka_diagram(pixels=32))
        text = toolchain_summary(result)
        assert "parallel WCET" in text
        assert "bottleneck" in bottleneck_report(result.htg, result.schedule)

    def test_feedback_never_hurts(self, platform):
        diagram_a = build_egpws_diagram(lookahead=16)
        diagram_b = build_egpws_diagram(lookahead=16)
        once = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2)).run(diagram_a)
        tuned = ArgoToolchain(
            platform, ToolchainConfig(loop_chunks=2, feedback_iterations=2)
        ).run(diagram_b)
        assert tuned.system_wcet <= once.system_wcet + 1e-6

    def test_feedback_history_recorded(self, platform):
        toolchain = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2, feedback_iterations=2))
        feedback = CrossLayerFeedback(toolchain)
        result = feedback.optimize(build_polka_diagram(pixels=32))
        assert result.system_wcet > 0
        assert len(feedback.history) >= 2
        assert "feedback history" in feedback.summary()

    def test_unpredictable_platform_rejected(self):
        from repro.adl import Core, Platform, ProcessorModel, RoundRobinBus
        from repro.adl.memory import scratchpad, shared_sram

        bad_proc = ProcessorModel("bad", dynamic_branch_prediction=True)
        bad = Platform(
            "bad", [Core(0, bad_proc, scratchpad("s"))], shared_sram(), RoundRobinBus()
        )
        with pytest.raises(ToolchainError):
            ArgoToolchain(bad)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ToolchainConfig(granularity="nope")
        with pytest.raises(ValueError):
            ToolchainConfig(scheduler="nope")
        with pytest.raises(ValueError):
            ToolchainConfig(loop_chunks=0)

    def test_alternative_schedulers_through_config(self, platform):
        for scheduler in ("sequential", "acet_list", "simulated_annealing"):
            result = ArgoToolchain(
                platform, ToolchainConfig(loop_chunks=2, scheduler=scheduler)
            ).run(build_polka_diagram(pixels=32))
            assert result.system_wcet > 0

    def test_platform_retargeting(self):
        """The same model runs on all three platform families (E7)."""
        diagram_builder = lambda: build_polka_diagram(pixels=32)  # noqa: E731
        for platform in (
            generic_predictable_multicore(cores=4),
            recore_xentium_like(dsp_cores=4, control_cores=0),
            kit_leon3_inoc(mesh_width=2, mesh_height=2, cores_per_tile=1),
        ):
            result = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2)).run(diagram_builder())
            assert result.system_wcet > 0

    def test_synthetic_pipeline_through_flow(self, platform):
        diagram = random_pipeline_diagram(stages=3, width=2, vector_size=16, seed=5)
        result = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2)).run(diagram)
        assert result.system_wcet > 0
        assert len(result.htg.leaf_tasks()) >= 6
