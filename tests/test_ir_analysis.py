"""Tests for IR analyses: loop bounds, access summaries, CFG, interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (
    BinOp,
    Const,
    FunctionBuilder,
    build_cfg,
)
from repro.ir.analysis import (
    access_summary,
    array_footprints,
    operation_histogram,
    read_write_sets,
    shared_access_summary,
)
from repro.ir.interpreter import InterpreterError, run_function
from repro.ir.loops import LoopBoundError, all_loops, max_loop_depth
from repro.ir.types import INT


def build_saxpy(n=16):
    fb = FunctionBuilder("saxpy")
    x = fb.input_array("x", (n,))
    y = fb.output_array("y", (n,))
    a = fb.scalar_input("a")
    with fb.loop("i", 0, n) as i:
        fb.assign(fb.at(y, i), fb.at(x, i) * a + fb.at(y, i))
    return fb.build()


def build_matmul(n=4):
    fb = FunctionBuilder("matmul")
    a = fb.input_array("a", (n, n))
    b = fb.input_array("b", (n, n))
    c = fb.output_array("c", (n, n))
    acc = fb.local("acc")
    with fb.loop("i", 0, n) as i:
        with fb.loop("j", 0, n) as j:
            fb.assign(acc, 0.0)
            with fb.loop("k", 0, n) as k:
                fb.assign(acc, acc + fb.at(a, i, k) * fb.at(b, k, j))
            fb.assign(fb.at(c, i, j), acc)
    return fb.build()


class TestLoopBounds:
    def test_constant_bounds(self):
        func = build_saxpy(10)
        loops = all_loops(func.body)
        assert len(loops) == 1
        assert loops[0].trip_count == 10

    def test_step_and_negative_span(self):
        fb = FunctionBuilder("f")
        x = fb.output_array("x", (16,))
        with fb.loop("i", 0, 16, step=4) as i:
            fb.assign(fb.at(x, i), 1.0)
        with fb.loop("j", 10, 0) as j:
            fb.assign(fb.at(x, 0), 2.0)
        func = fb.build()
        loops = all_loops(func.body)
        assert loops[0].trip_count == 4
        assert loops[1].trip_count == 0

    def test_symbolic_bound_requires_annotation(self):
        fb = FunctionBuilder("f")
        n = fb.scalar_input("n", INT)
        x = fb.output_array("x", (64,))
        with fb.loop("i", 0, n) as i:
            fb.assign(fb.at(x, i), 0.0)
        func = fb.build()
        with pytest.raises(LoopBoundError):
            all_loops(func.body)

    def test_symbolic_bound_with_annotation(self):
        fb = FunctionBuilder("f")
        n = fb.scalar_input("n", INT)
        x = fb.output_array("x", (64,))
        with fb.loop("i", 0, n, max_trip_count=64) as i:
            fb.assign(fb.at(x, i), 0.0)
        func = fb.build()
        assert all_loops(func.body)[0].trip_count == 64

    def test_nesting_depth_and_total_iterations(self):
        func = build_matmul(4)
        assert max_loop_depth(func.body) == 3
        innermost = [info for info in all_loops(func.body) if info.depth == 2]
        assert innermost[0].total_iterations == 64


class TestAccessSummaries:
    def test_saxpy_counts(self):
        func = build_saxpy(16)
        summary = access_summary(func.body)
        assert summary.reads["x"] == 16
        assert summary.reads["y"] == 16
        assert summary.writes["y"] == 16
        assert summary.total == 48

    def test_if_takes_worst_branch(self):
        fb = FunctionBuilder("f")
        x = fb.input_array("x", (8,))
        y = fb.output_array("y", (8,))
        flag = fb.scalar_input("flag")
        with fb.if_then(BinOp(">", flag, Const(0.0))):
            with fb.loop("i", 0, 8) as i:
                fb.assign(fb.at(y, i), fb.at(x, i))
        with fb.orelse():
            fb.assign(fb.at(y, 0), 1.0)
        func = fb.build()
        summary = access_summary(func.body)
        assert summary.reads.get("x", 0) == 8
        assert summary.writes["y"] == 8  # max(8, 1)

    def test_shared_summary_filters_locals(self):
        fb = FunctionBuilder("f")
        shared = fb.shared_array("s", (8,))
        local = fb.local_array("l", (8,))
        with fb.loop("i", 0, 8) as i:
            fb.assign(fb.at(local, i), fb.at(shared, i))
        func = fb.build()
        shared_only = shared_access_summary(func, func.body)
        assert "s" in shared_only.reads
        assert "l" not in shared_only.writes

    def test_read_write_sets(self):
        func = build_saxpy()
        reads, writes = read_write_sets(func.body)
        assert {"x", "y", "a"} <= reads
        assert "y" in writes

    def test_operation_histogram_scales_with_loops(self):
        func = build_matmul(4)
        hist = operation_histogram(func.body)
        assert hist["*"] == 64
        assert hist["+"] == 64

    def test_array_footprints(self):
        func = build_matmul(4)
        footprints = array_footprints(func)
        assert footprints["a"] == 4 * 4 * 4


class TestCFG:
    def test_straightline_cfg(self):
        fb = FunctionBuilder("f")
        x = fb.local("x")
        fb.assign(x, 1.0)
        fb.assign(x, x + 1.0)
        cfg = build_cfg(fb.build())
        assert cfg.entry is not None and cfg.exit is not None
        assert len(cfg.loop_bounds) == 0

    def test_loop_cfg_has_back_edge_and_bound(self):
        cfg = build_cfg(build_saxpy(8))
        assert len(cfg.loop_bounds) == 1
        bound = next(iter(cfg.loop_bounds.values()))
        assert bound == 8
        kinds = {e.kind for e in cfg.edges}
        assert "back" in kinds

    def test_if_creates_diamond(self):
        fb = FunctionBuilder("f")
        x = fb.scalar_input("x")
        y = fb.local("y")
        with fb.if_then(BinOp(">", x, Const(0.0))):
            fb.assign(y, 1.0)
        with fb.orelse():
            fb.assign(y, 2.0)
        cfg = build_cfg(fb.build())
        # entry, exit, cond-carrying entry chain, then, else, join
        branch_blocks = [b for b in cfg.blocks if len(cfg.successors(b)) == 2]
        assert len(branch_blocks) == 1

    def test_matmul_cfg_nested_bounds(self):
        cfg = build_cfg(build_matmul(4))
        assert sorted(cfg.loop_bounds.values()) == [4, 4, 4]


class TestInterpreter:
    def test_saxpy_matches_numpy(self):
        func = build_saxpy(16)
        x = np.arange(16, dtype=float)
        y = np.ones(16)
        result = run_function(func, {"x": x, "y": y.copy(), "a": 2.0})
        np.testing.assert_allclose(result.array("y"), 2.0 * x + y)

    def test_matmul_matches_numpy(self):
        func = build_matmul(4)
        rng = np.random.default_rng(0)
        a = rng.normal(size=(4, 4))
        b = rng.normal(size=(4, 4))
        result = run_function(func, {"a": a, "b": b})
        np.testing.assert_allclose(result.array("c"), a @ b, rtol=1e-12)

    def test_stats_counted(self):
        func = build_saxpy(8)
        result = run_function(func, {"x": np.ones(8), "y": np.zeros(8), "a": 1.0})
        assert result.stats.array_reads["x"] == 8
        assert result.stats.array_writes["y"] == 8
        assert result.stats.loop_iterations == 8
        assert result.stats.total_operations > 0

    def test_unknown_input_rejected(self):
        func = build_saxpy(4)
        with pytest.raises(InterpreterError):
            run_function(func, {"nope": 1.0})

    def test_out_of_bounds_write_rejected(self):
        fb = FunctionBuilder("f")
        x = fb.output_array("x", (4,))
        fb.assign(fb.at(x, 10), 1.0)
        with pytest.raises(InterpreterError):
            run_function(fb.build())

    def test_loop_bound_violation_detected(self):
        fb = FunctionBuilder("f")
        n = fb.scalar_input("n", INT)
        x = fb.output_array("x", (64,))
        with fb.loop("i", 0, n, max_trip_count=4) as i:
            fb.assign(fb.at(x, i), 1.0)
        func = fb.build()
        with pytest.raises(InterpreterError, match="exceeded"):
            run_function(func, {"n": 10})

    def test_division_by_zero_reported(self):
        fb = FunctionBuilder("f")
        x = fb.scalar_input("x")
        y = fb.local("y")
        fb.assign(y, BinOp("/", Const(1.0), x))
        with pytest.raises(InterpreterError):
            run_function(fb.build(), {"x": 0.0})

    def test_if_branches(self):
        fb = FunctionBuilder("absval")
        x = fb.scalar_input("x")
        y = fb.local("y")
        with fb.if_then(BinOp("<", x, Const(0.0))):
            fb.assign(y, -x)
        with fb.orelse():
            fb.assign(y, x)
        func = fb.build()
        assert run_function(func, {"x": -3.0}).scalar("y") == 3.0
        assert run_function(func, {"x": 5.0}).scalar("y") == 5.0

    @given(st.lists(st.floats(-100, 100), min_size=8, max_size=8), st.floats(-5, 5))
    @settings(max_examples=25, deadline=None)
    def test_saxpy_property(self, xs, a):
        func = build_saxpy(8)
        x = np.array(xs)
        result = run_function(func, {"x": x, "y": np.zeros(8), "a": a})
        np.testing.assert_allclose(result.array("y"), a * x, rtol=1e-9, atol=1e-9)

    def test_interpreter_matches_static_worst_case_on_branch_free_code(self):
        """On branch-free straight-line loops the static worst-case access
        counts must equal the dynamically observed counts."""
        func = build_matmul(3)
        result = run_function(func, {"a": np.ones((3, 3)), "b": np.ones((3, 3))})
        static = access_summary(func.body)
        assert result.stats.array_reads["a"] == static.reads["a"]
        assert result.stats.array_writes["c"] == static.writes["c"]
