"""Tests for the WCET tightener: flow facts feeding the IPET LP."""

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.analysis import derive_flow_facts, tightened_ipet_wcet
from repro.frontend import compile_diagram
from repro.ir import FunctionBuilder
from repro.ir.loops import LoopBoundError
from repro.ir.types import INT
from repro.usecases import ALL_USECASES
from repro.wcet import HardwareCostModel, ipet_wcet
from repro.wcet.ipet import FlowFacts

USECASES = sorted(ALL_USECASES)


@pytest.fixture(scope="module")
def model():
    platform = generic_predictable_multicore()
    return HardwareCostModel(platform, platform.cores[0].core_id)


def branchy():
    """A loop whose else-branch (the expensive one) is statically dead."""
    fb = FunctionBuilder("branchy")
    x = fb.input_array("x", (16,))
    y = fb.output_array("y", (16,))
    with fb.loop("i", 0, 16) as i:
        with fb.if_then(i < 32):  # always true: i ranges over [0, 15]
            fb.assign(fb.at(y, i), fb.at(x, i) * 2.0)
        with fb.orelse():
            fb.assign(fb.at(y, i), fb.call("sqrt", fb.call("exp", fb.at(x, i))))
    return fb.build()


class TestTighteningIsSound:
    @pytest.mark.parametrize("usecase", USECASES)
    def test_facts_never_loosen_usecase_bound(self, usecase, model):
        build, _inputs = ALL_USECASES[usecase]
        entry = compile_diagram(build()).entry
        plain = ipet_wcet(entry, model).wcet
        facts, report = derive_flow_facts(entry)
        assert report.count("error") == 0
        tight = ipet_wcet(entry, model, flow_facts=facts).wcet
        assert tight <= plain + 1e-6

    def test_branchy_function_is_strictly_tightened(self, model):
        func = branchy()
        plain = ipet_wcet(func, model).wcet
        facts, report = derive_flow_facts(func)
        assert facts.infeasible_edges  # the dead else-branch edge
        tight = ipet_wcet(func, model, flow_facts=facts).wcet
        assert tight < plain

    def test_tightened_wrapper_agrees(self, model):
        func = branchy()
        facts, _report = derive_flow_facts(func)
        direct = ipet_wcet(func, model, flow_facts=facts).wcet
        wrapped, report = tightened_ipet_wcet(func, model)
        assert wrapped == pytest.approx(direct)
        assert report.checked["wcet_cycles"] == int(direct)


class TestDerivedLoopBounds:
    def test_unannotated_loop_is_bounded_by_facts(self, model):
        # upper bound is a local with a known constant value: the front-end
        # annotation machinery cannot bound it, the value-range analysis can
        fb = FunctionBuilder("derived")
        y = fb.output_array("y", (8,))
        n = fb.local("n", INT, initial=8)
        with fb.loop("i", 0, n) as i:
            fb.assign(fb.at(y, i), 1.0)
        func = fb.build()

        # without facts the CFG build itself rejects the loop
        with pytest.raises(LoopBoundError):
            ipet_wcet(func, model)
        facts, report = derive_flow_facts(func)
        assert report.ok
        assert report.checked.get("bounds_derived", 0) == 1
        assert list(facts.loop_bounds.values()) == [8]
        result = ipet_wcet(func, model, flow_facts=facts)
        assert result.wcet > 0

    def test_conservative_annotation_is_tightened(self, model):
        fb = FunctionBuilder("tightened")
        y = fb.output_array("y", (8,))
        n = fb.local("n", INT, initial=8)
        with fb.loop("i", 0, n, max_trip_count=100) as i:
            fb.assign(fb.at(y, i), 1.0)
        func = fb.build()

        plain = ipet_wcet(func, model).wcet
        facts, report = derive_flow_facts(func)
        assert report.checked.get("bounds_tightened", 0) == 1
        tight = ipet_wcet(func, model, flow_facts=facts).wcet
        assert tight < plain

    def test_exact_annotation_is_verified(self, model):
        fb = FunctionBuilder("verified")
        y = fb.output_array("y", (8,))
        with fb.loop("i", 0, 8) as i:
            fb.assign(fb.at(y, i), 1.0)
        _facts, report = derive_flow_facts(fb.build())
        assert report.ok
        assert report.checked.get("bounds_verified", 0) == 1

    def test_optimistic_annotation_warns(self, model):
        # declared bound below the provable minimum trip count is unsound
        fb = FunctionBuilder("optimistic")
        y = fb.output_array("y", (8,))
        with fb.loop("i", 0, 8, max_trip_count=2) as i:
            fb.assign(fb.at(y, i), 1.0)
        _facts, report = derive_flow_facts(fb.build())
        codes = [f.code for f in report.findings]
        assert "wcet.optimistic-loop-bound" in codes
        assert all(f.severity == "warning" for f in report.findings)

    def test_underivable_unannotated_loop_is_an_error(self):
        fb = FunctionBuilder("unbounded")
        m = fb.scalar_input("m", INT)
        y = fb.output_array("y", (8,))
        with fb.loop("i", 0, m) as i:
            fb.assign(fb.at(y, 0), 1.0)
        _facts, report = derive_flow_facts(fb.build())
        codes = [f.code for f in report.findings]
        assert "wcet.unbounded-loop" in codes


class TestFlowFactsPlumbing:
    def test_is_empty(self):
        assert FlowFacts().is_empty
        assert not FlowFacts(loop_bounds={3: 8}).is_empty

    def test_unknown_keys_are_ignored(self, model):
        func = branchy()
        plain = ipet_wcet(func, model).wcet
        bogus = FlowFacts(
            infeasible_edges=frozenset({(997, 998, "taken")}),
            loop_bounds={999: 1},
        )
        assert ipet_wcet(func, model, flow_facts=bogus).wcet == pytest.approx(plain)
