"""Tests for the model-to-IR front end (lowering + diagram compilation).

The key property: for any diagram, the model-level simulation (mini-Scilab
interpreter) and the execution of the generated IR (IR interpreter) must
produce the same outputs.
"""

import numpy as np
import pytest

from repro.frontend import compile_diagram, lower_script
from repro.frontend.lowering import ScilabLoweringError
from repro.ir import FunctionBuilder, to_c
from repro.ir.expressions import Const
from repro.ir.interpreter import run_function
from repro.model import Diagram, library
from repro.model.scilab import parse_script


class TestLowering:
    def _lower_and_run(self, src, bindings_spec, inputs):
        fb = FunctionBuilder("f")
        bindings = {}
        for name, spec in bindings_spec.items():
            if spec == "scalar_in":
                bindings[name] = fb.scalar_input(name)
            elif spec == "scalar_local":
                bindings[name] = fb.local(name)
            elif isinstance(spec, tuple) and spec[0] == "array_in":
                bindings[name] = fb.input_array(name, spec[1])
            elif isinstance(spec, tuple) and spec[0] == "array_out":
                bindings[name] = fb.output_array(name, spec[1])
            elif isinstance(spec, tuple) and spec[0] == "const":
                bindings[name] = Const(spec[1])
        lower_script(parse_script(src), fb, bindings)
        func = fb.build()
        return func, run_function(func, inputs)

    def test_scalar_expression(self):
        func, result = self._lower_and_run(
            "y = 2 * u + 1", {"u": "scalar_in", "y": "scalar_local"}, {"u": 3.0}
        )
        assert result.scalar("y") == pytest.approx(7.0)

    def test_one_based_indexing_translated(self):
        src = "for i = 1:4\n  y(i) = u(i) * k\nend"
        func, result = self._lower_and_run(
            src,
            {"u": ("array_in", (4,)), "y": ("array_out", (4,)), "k": ("const", 3.0)},
            {"u": np.array([1.0, 2.0, 3.0, 4.0])},
        )
        np.testing.assert_allclose(result.array("y"), [3, 6, 9, 12])
        text = to_c(func)
        assert "for (int i = 1; i < 5; i++)" in text

    def test_if_lowering(self):
        func, result = self._lower_and_run(
            "y = 0\nif u > 2 then\n  y = 1\nend",
            {"u": "scalar_in", "y": "scalar_local"},
            {"u": 5.0},
        )
        assert result.scalar("y") == 1

    def test_power_operator_becomes_pow(self):
        func, result = self._lower_and_run(
            "y = u ^ 2", {"u": "scalar_in", "y": "scalar_local"}, {"u": 3.0}
        )
        assert result.scalar("y") == pytest.approx(9.0)

    def test_temporaries_are_prefixed(self):
        fb = FunctionBuilder("f")
        u = fb.input_array("u", (3,))
        y = fb.local("y")
        lower_script(
            parse_script("acc = 0\nfor i = 1:3\n  acc = acc + u(i)\nend\ny = acc"),
            fb,
            {"u": u, "y": y},
            temp_prefix="blk__",
        )
        func = fb.build()
        names = {d.name for d in func.decls}
        assert "blk__acc" in names

    def test_unbound_read_rejected(self):
        fb = FunctionBuilder("f")
        with pytest.raises(ScilabLoweringError):
            lower_script(parse_script("y = nothere + 1"), fb, {"y": fb.local("y")})

    def test_whole_array_assignment_rejected(self):
        fb = FunctionBuilder("f")
        arr = fb.output_array("y", (4,))
        with pytest.raises(ScilabLoweringError):
            lower_script(parse_script("y = 0"), fb, {"y": arr})

    def test_wrong_dimensionality_rejected(self):
        fb = FunctionBuilder("f")
        arr = fb.input_array("A", (2, 2))
        y = fb.local("y")
        with pytest.raises(ScilabLoweringError):
            lower_script(parse_script("y = A(1)"), fb, {"A": arr, "y": y})

    def test_vector_literal_rejected_in_behavior(self):
        fb = FunctionBuilder("f")
        with pytest.raises(ScilabLoweringError):
            lower_script(parse_script("y = [1 2 3]"), fb, {"y": fb.local("y")})

    def test_negative_step_rejected(self):
        fb = FunctionBuilder("f")
        y = fb.output_array("y", (4,))
        with pytest.raises(ScilabLoweringError):
            lower_script(parse_script("for i = 4:-1:1\n  y(i) = 0\nend"), fb, {"y": y})


def build_pipeline_diagram(size=6):
    d = Diagram("pipeline")
    d.add_block(library.gain("pre", 2.0, size=size))
    d.add_block(library.fir_filter("smooth", np.array([0.5, 0.5]), size=size))
    d.add_block(library.saturation("clip", 0.0, 4.0, size=size))
    d.add_block(library.scalar_max("peak", size=size))
    d.connect("pre", "y", "smooth", "u")
    d.connect("smooth", "y", "clip", "u")
    d.connect("clip", "y", "peak", "u")
    d.mark_input("pre", "u")
    d.mark_output("peak", "y")
    return d


class TestCompileDiagram:
    def test_compiles_and_runs(self):
        model = compile_diagram(build_pipeline_diagram())
        assert model.entry.name == "pipeline_step"
        assert len(model.block_regions) >= 4
        u = np.array([0.1, 0.5, 1.0, 2.0, 3.0, 4.0])
        inputs = model.run_inputs({"pre.u": u})
        result = run_function(model.entry, inputs)
        assert result.scalar(model.output_key("peak", "y")) > 0

    def test_ir_matches_model_simulation(self):
        diagram = build_pipeline_diagram()
        rng = np.random.default_rng(3)
        u = rng.uniform(-1, 3, size=6)
        sim = diagram.simulate(steps=1, input_provider={"pre.u": u})[0]["peak.y"]

        model = compile_diagram(build_pipeline_diagram())
        result = run_function(model.entry, model.run_inputs({"pre.u": u}))
        ir_value = result.scalar(model.output_key("peak", "y"))
        assert ir_value == pytest.approx(sim, rel=1e-9)

    def test_stateful_block_compiles(self):
        d = Diagram("acc")
        d.add_block(library.add("sum", size=1))
        d.add_block(library.unit_delay("z"))
        d.connect("sum", "y", "z", "u")
        d.connect("z", "y", "sum", "b")
        d.mark_input("sum", "a")
        d.mark_output("sum", "y")
        model = compile_diagram(d)
        # state variable becomes a shared declaration
        state_decls = [v for v in model.state_values]
        assert any(name.startswith("st_z_") for name in state_decls)
        result = run_function(model.entry, model.run_inputs({"sum.a": 1.0}))
        assert result.scalar(model.output_key("sum", "y")) == pytest.approx(1.0)

    def test_array_params_become_inputs(self):
        model = compile_diagram(build_pipeline_diagram())
        assert any(name.startswith("p_smooth_") for name in model.parameter_values)

    def test_external_output_also_connected_gets_copy(self):
        d = Diagram("tap")
        d.add_block(library.gain("g", 2.0, size=3))
        d.add_block(library.scalar_max("m", size=3))
        d.connect("g", "y", "m", "u")
        d.mark_input("g", "u")
        d.mark_output("g", "y")  # observed AND connected
        d.mark_output("m", "y")
        model = compile_diagram(d)
        u = np.array([1.0, 5.0, 2.0])
        result = run_function(model.entry, model.run_inputs({"g.u": u}))
        np.testing.assert_allclose(result.array(model.output_key("g", "y")), 2 * u)
        assert result.scalar(model.output_key("m", "y")) == pytest.approx(10.0)

    def test_generated_c_is_printable(self):
        model = compile_diagram(build_pipeline_diagram())
        text = to_c(model.program)
        assert "void pipeline_step(" in text
        assert text.count("{") == text.count("}")

    def test_invalid_diagram_rejected(self):
        d = Diagram("bad")
        d.add_block(library.gain("g", 1.0))
        d.mark_output("g", "y")
        with pytest.raises(Exception):
            compile_diagram(d)
