"""Tests for repro.utils (rng, tables, intervals, graph helpers)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    Interval,
    Table,
    intervals_overlap,
    is_acyclic,
    longest_path_length,
    make_rng,
    topological_order,
    transitive_closure,
)
from repro.utils.intervals import total_busy_time
from repro.utils.rng import derive_rng


class TestRng:
    def test_default_seed_is_deterministic(self):
        a = make_rng().integers(0, 1000, size=10)
        b = make_rng().integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_explicit_seed_changes_stream(self):
        a = make_rng(1).integers(0, 1000, size=10)
        b = make_rng(2).integers(0, 1000, size=10)
        assert not np.array_equal(a, b)

    def test_derive_rng_is_deterministic(self):
        a = derive_rng(make_rng(7), salt=3).integers(0, 1000, size=5)
        b = derive_rng(make_rng(7), salt=3).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_derive_rng_differs_by_salt(self):
        parent = make_rng(7)
        a = derive_rng(parent, salt=1).integers(0, 1000, size=5)
        parent = make_rng(7)
        b = derive_rng(parent, salt=2).integers(0, 1000, size=5)
        assert not np.array_equal(a, b)


class TestTable:
    def test_render_contains_headers_and_rows(self):
        table = Table(["app", "cores", "wcet"], title="E2")
        table.add_row(["egpws", 4, 123.456])
        text = table.render()
        assert "E2" in text
        assert "app" in text and "cores" in text
        assert "egpws" in text
        assert "123.456" in text

    def test_row_arity_mismatch_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_alignment_is_stable(self):
        table = Table(["name", "x"])
        table.add_row(["longer-name", 1])
        table.add_row(["s", 22])
        lines = table.render().splitlines()
        # all data/header lines have the separator at the same position
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1


class TestInterval:
    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 1.0)

    def test_overlap_basic(self):
        assert intervals_overlap(Interval(0, 10), Interval(5, 15))
        assert not intervals_overlap(Interval(0, 10), Interval(10, 20))

    def test_intersection(self):
        inter = Interval(0, 10).intersection(Interval(5, 15))
        assert inter == Interval(5, 10)
        assert Interval(0, 5).intersection(Interval(5, 10)) is None

    def test_shift_and_contains(self):
        iv = Interval(1, 3).shifted(2)
        assert iv == Interval(3, 5)
        assert iv.contains(3) and not iv.contains(5)

    def test_total_busy_time_merges_overlaps(self):
        busy = total_busy_time([Interval(0, 5), Interval(3, 8), Interval(10, 12)])
        assert busy == pytest.approx(10.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda t: Interval(min(t), max(t))
            ),
            max_size=20,
        )
    )
    def test_busy_time_bounded_by_sum_and_span(self, intervals):
        busy = total_busy_time(intervals)
        assert busy <= sum(iv.length for iv in intervals) + 1e-9
        if intervals:
            span = max(iv.end for iv in intervals) - min(iv.start for iv in intervals)
            assert busy <= span + 1e-9


class TestGraphs:
    def test_topological_order_respects_edges(self):
        nodes = ["a", "b", "c", "d"]
        edges = [("a", "b"), ("b", "c"), ("a", "d")]
        order = topological_order(nodes, edges)
        assert order.index("a") < order.index("b") < order.index("c")
        assert order.index("a") < order.index("d")

    def test_topological_order_rejects_cycles(self):
        with pytest.raises(ValueError):
            topological_order(["a", "b"], [("a", "b"), ("b", "a")])

    def test_is_acyclic(self):
        assert is_acyclic([("a", "b"), ("b", "c")])
        assert not is_acyclic([("a", "b"), ("b", "a")])

    def test_longest_path_node_weights(self):
        nodes = ["a", "b", "c"]
        edges = [("a", "b"), ("b", "c"), ("a", "c")]
        weights = {"a": 5.0, "b": 10.0, "c": 1.0}
        assert longest_path_length(nodes, edges, weights) == pytest.approx(16.0)

    def test_longest_path_edge_weights(self):
        nodes = ["a", "b"]
        edges = [("a", "b")]
        length = longest_path_length(nodes, edges, {"a": 1.0, "b": 1.0}, lambda u, v: 10.0)
        assert length == pytest.approx(12.0)

    def test_transitive_closure(self):
        closure = transitive_closure(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert ("a", "c") in closure
        assert ("c", "a") not in closure

    @given(st.integers(2, 8), st.integers(0, 42))
    def test_longest_path_at_least_max_node_weight(self, n, seed):
        rng = np.random.default_rng(seed)
        nodes = list(range(n))
        edges = [(i, j) for i in nodes for j in nodes if i < j and rng.random() < 0.4]
        weights = {i: float(rng.integers(1, 10)) for i in nodes}
        assert longest_path_length(nodes, edges, weights) >= max(weights.values()) - 1e-9
