"""Regression tests for the memoized WCET analysis layer.

The cache must be *observationally invisible*: cached and uncached analyses
have to produce byte-identical schedules and WCET bounds on every use case,
and repeated scheduling runs must be deterministic.
"""

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.frontend import compile_diagram
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.ir.builder import FunctionBuilder
from repro.scheduling import WcetAwareListScheduler
from repro.scheduling.schedule import default_core_order
from repro.usecases import ALL_USECASES
from repro.usecases.workloads import synthetic_compiled_model
from repro.wcet import (
    HardwareCostModel,
    WcetAnalysisCache,
    analyze_function_wcet,
    analyze_task_wcet,
    annotate_htg_wcets,
    system_level_wcet,
)

USECASES = ["egpws", "polka", "weaa", "workloads"]


def build_case(usecase, cores=4, chunks=2):
    if usecase == "workloads":
        model = synthetic_compiled_model(num_kernels=6, vector_size=32, seed=1)
    else:
        builder, _ = ALL_USECASES[usecase]
        model = compile_diagram(builder())
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    return model, htg, platform


def schedule_fingerprint(schedule):
    return (
        schedule.mapping,
        schedule.order,
        schedule.wcet_bound,
        schedule.result.task_effective_wcet,
        {tid: (iv.start, iv.end) for tid, iv in schedule.result.task_intervals.items()},
    )


@pytest.mark.parametrize("usecase", USECASES)
class TestCachedEqualsUncached:
    def test_task_analyses_identical(self, usecase):
        model, htg, platform = build_case(usecase)
        cache = WcetAnalysisCache()
        for core_id in (0, 1):
            model_cost = HardwareCostModel(platform, core_id)
            for task in htg.leaf_tasks():
                for average in (False, True):
                    plain = analyze_task_wcet(task, model.entry, model_cost, average=average)
                    cached = analyze_task_wcet(
                        task, model.entry, model_cost, average=average, cache=cache
                    )
                    again = analyze_task_wcet(
                        task, model.entry, model_cost, average=average, cache=cache
                    )
                    for b in (cached, again):
                        assert b.total == plain.total
                        assert b.compute == plain.compute
                        assert b.memory == plain.memory
                        assert b.control == plain.control
                        assert b.shared_accesses == plain.shared_accesses
        assert cache.stats.hits > 0

    def test_system_level_identical(self, usecase):
        model, htg, platform = build_case(usecase)
        mapping = {
            t.task_id: i % platform.num_cores
            for i, t in enumerate(htg.topological_tasks())
            if not t.is_synthetic
        }
        order = default_core_order(htg, mapping)
        plain = system_level_wcet(htg, model.entry, platform, mapping, order)
        cached = system_level_wcet(
            htg, model.entry, platform, mapping, order, cache=WcetAnalysisCache()
        )
        assert cached.makespan == plain.makespan
        assert cached.task_effective_wcet == plain.task_effective_wcet
        assert cached.task_intervals == plain.task_intervals
        assert cached.task_contenders == plain.task_contenders
        assert cached.interference_cycles == plain.interference_cycles
        assert cached.communication_cycles == plain.communication_cycles

    def test_schedules_identical_across_caches(self, usecase):
        model, htg, platform = build_case(usecase)
        private = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        shared_cache = WcetAnalysisCache()
        shared = WcetAwareListScheduler(platform=platform, cache=shared_cache).schedule(
            htg, model.entry
        )
        # a third run reusing the now-warm shared cache
        warm = WcetAwareListScheduler(platform=platform, cache=shared_cache).schedule(
            htg, model.entry
        )
        assert schedule_fingerprint(shared) == schedule_fingerprint(private)
        assert schedule_fingerprint(warm) == schedule_fingerprint(private)
        assert shared_cache.stats.hits > 0

    def test_annotation_identical(self, usecase):
        model, htg, platform = build_case(usecase)
        plain = {t.task_id: (t.wcet, t.acet) for t in htg.leaf_tasks()}
        annotate_htg_wcets(
            htg, model.entry, HardwareCostModel(platform, 0), cache=WcetAnalysisCache()
        )
        cached = {t.task_id: (t.wcet, t.acet) for t in htg.leaf_tasks()}
        assert cached == plain


class TestDeterminism:
    @pytest.mark.parametrize("usecase", USECASES)
    def test_two_schedule_runs_identical(self, usecase):
        model, htg, platform = build_case(usecase)
        first = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        second = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        assert schedule_fingerprint(first) == schedule_fingerprint(second)


class TestCacheBehaviour:
    def _small_function(self):
        fb = FunctionBuilder("f")
        x = fb.local("x")
        fb.assign(x, 1)
        with fb.loop("i", 0, 8) as i:
            fb.assign(x, fb.binop("+", x, i))
        return fb.build()

    def test_homogeneous_cores_share_entries(self):
        model, htg, platform = build_case("workloads")
        cache = WcetAnalysisCache()
        for task in htg.leaf_tasks():
            analyze_task_wcet(task, model.entry, HardwareCostModel(platform, 0), cache=cache)
        misses = cache.stats.misses
        for task in htg.leaf_tasks():
            analyze_task_wcet(task, model.entry, HardwareCostModel(platform, 1), cache=cache)
        # identical cores on a homogeneous platform share cost signatures
        assert cache.stats.misses == misses

    def test_invalidate_function_after_mutation(self):
        func = self._small_function()
        platform = generic_predictable_multicore(cores=2)
        model_cost = HardwareCostModel(platform, 0)
        cache = WcetAnalysisCache()
        before = analyze_function_wcet(func, model_cost, cache=cache).total
        # mutate the IR in place: duplicate the loop statement
        func.body.stmts.append(func.body.stmts[-1])
        cache.invalidate_function(func)
        after = analyze_function_wcet(func, model_cost, cache=cache).total
        assert after > before
        assert after == analyze_function_wcet(func, model_cost).total

    def test_cached_breakdowns_are_isolated_copies(self):
        func = self._small_function()
        platform = generic_predictable_multicore(cores=2)
        model_cost = HardwareCostModel(platform, 0)
        cache = WcetAnalysisCache()
        first = cache.function_wcet(func, model_cost)
        first.total += 1e9  # corrupting the returned object must not leak
        second = cache.function_wcet(func, model_cost)
        assert second.total == first.total - 1e9

    def test_empty_cache_is_truthy(self):
        # an empty cache defines __len__ == 0; it must still be truthy so
        # `cache or default` style code cannot silently drop a shared cache
        cache = WcetAnalysisCache()
        assert len(cache) == 0
        assert bool(cache)

    def test_feedback_shares_cache_across_iterations(self):
        from repro.core import ArgoToolchain, ToolchainConfig
        from repro.usecases import build_egpws_diagram

        platform = generic_predictable_multicore(cores=2)
        chain = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2, feedback_iterations=2))
        chain.run(build_egpws_diagram())
        assert chain.wcet_cache.stats.hits > 0

    def test_clear_resets_entries(self):
        func = self._small_function()
        platform = generic_predictable_multicore(cores=2)
        cache = WcetAnalysisCache()
        cache.function_wcet(func, HardwareCostModel(platform, 0))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


def _heterogeneous_platform():
    """Two identical Xentium-type cores with *distinct* processor objects,
    plus one Leon3 core: the identical cores must share cache entries, the
    different type must not."""
    from repro.adl.architecture import Core, Platform
    from repro.adl.interconnect import RoundRobinBus
    from repro.adl.memory import scratchpad, shared_sram
    from repro.adl.processor import leon3_processor, xentium_processor

    cores = [
        Core(core_id=0, processor=xentium_processor(), scratchpad=scratchpad("spm0", 32)),
        Core(core_id=1, processor=xentium_processor(), scratchpad=scratchpad("spm1", 32)),
        Core(core_id=2, processor=leon3_processor(), scratchpad=scratchpad("spm2", 32)),
    ]
    return Platform(
        name="hetero2plus1",
        cores=cores,
        shared_memory=shared_sram(size_kib=512, latency=8),
        interconnect=RoundRobinBus(),
    )


class TestHeterogeneousSharing:
    def test_identical_core_types_share_entries(self):
        model, htg, _ = build_case("workloads")
        platform = _heterogeneous_platform()
        cache = WcetAnalysisCache()
        for task in htg.leaf_tasks():
            analyze_task_wcet(task, model.entry, HardwareCostModel(platform, 0), cache=cache)
        misses = cache.stats.misses
        # core 1 has the same cost signature through a distinct processor
        # object: every lookup must hit
        for task in htg.leaf_tasks():
            analyze_task_wcet(task, model.entry, HardwareCostModel(platform, 1), cache=cache)
        assert cache.stats.misses == misses
        # core 2 is a genuinely different processor type: all lookups miss
        for task in htg.leaf_tasks():
            analyze_task_wcet(task, model.entry, HardwareCostModel(platform, 2), cache=cache)
        assert cache.stats.misses == 2 * misses

    def test_entries_shared_across_platform_rebuilds(self):
        model, htg, _ = build_case("workloads")
        cache = WcetAnalysisCache()
        for task in htg.leaf_tasks():
            analyze_task_wcet(
                task, model.entry, HardwareCostModel(_heterogeneous_platform(), 0), cache=cache
            )
        misses = cache.stats.misses
        # a freshly built platform has all-new object identities but the same
        # cost content, so the keys are identical
        for task in htg.leaf_tasks():
            analyze_task_wcet(
                task, model.entry, HardwareCostModel(_heterogeneous_platform(), 0), cache=cache
            )
        assert cache.stats.misses == misses

    def test_hetero_results_match_uncached(self):
        model, htg, _ = build_case("workloads")
        platform = _heterogeneous_platform()
        cache = WcetAnalysisCache()
        for core_id in (0, 1, 2):
            cost_model = HardwareCostModel(platform, core_id)
            for task in htg.leaf_tasks():
                plain = analyze_task_wcet(task, model.entry, cost_model)
                cached = analyze_task_wcet(task, model.entry, cost_model, cache=cache)
                assert (plain.total, plain.shared_accesses) == (cached.total, cached.shared_accesses)


class TestDiskPersistence:
    def _analyze_all(self, cache):
        model, htg, platform = build_case("workloads")
        totals = {}
        for task in htg.leaf_tasks():
            breakdown = analyze_task_wcet(
                task, model.entry, HardwareCostModel(platform, 0), cache=cache
            )
            totals[task.task_id] = (
                breakdown.total,
                breakdown.compute,
                breakdown.memory,
                breakdown.control,
                breakdown.shared_accesses,
            )
        return totals

    def test_roundtrip_across_cache_instances(self, tmp_path):
        first = WcetAnalysisCache.open(tmp_path / "cache")
        cold = self._analyze_all(first)
        assert first.stats.misses > 0
        assert first.flush() == first.stats.misses
        assert first.flush() == 0  # nothing new: idempotent

        # a fresh instance (fresh platform/IR objects too) must hit disk only
        second = WcetAnalysisCache.open(tmp_path / "cache")
        warm = self._analyze_all(second)
        assert warm == cold
        assert second.stats.misses == 0
        assert second.stats.disk_hits == len(cold)

    def test_repeat_lookups_of_loaded_entries_count_as_hits(self, tmp_path):
        """Pinned semantics: ``disk_hits`` counts the *first* use of each
        loaded entry only; every repeat lookup is an in-process ``hit``, so
        hot entries cannot inflate the disk-hit rate."""
        first = WcetAnalysisCache.open(tmp_path / "cache")
        cold = self._analyze_all(first)
        first.flush()
        second = WcetAnalysisCache.open(tmp_path / "cache")
        self._analyze_all(second)
        assert second.stats.disk_hits == len(cold)
        assert second.stats.hits == 0
        # the same lookups again: served from memory, not "from disk"
        self._analyze_all(second)
        assert second.stats.disk_hits == len(cold)
        assert second.stats.hits == len(cold)
        assert second.stats.misses == 0

    def test_entries_live_under_version_dir(self, tmp_path):
        from repro.wcet.cache import CACHE_SCHEMA_VERSION

        cache = WcetAnalysisCache.open(tmp_path / "cache")
        self._analyze_all(cache)
        cache.flush()
        vdir = tmp_path / "cache" / f"v{CACHE_SCHEMA_VERSION}"
        assert list(vdir.glob("entries*.jsonl"))
        assert list(vdir.glob("stats*.jsonl"))

    def test_foreign_versions_and_torn_lines_are_ignored(self, tmp_path):
        from repro.wcet.cache import CACHE_SCHEMA_VERSION

        cache_dir = tmp_path / "cache"
        # stale schema version: must not be read
        (cache_dir / "v0").mkdir(parents=True)
        (cache_dir / "v0" / "entries.jsonl").write_text('{"key":"stale","total":1}\n')
        cache = WcetAnalysisCache.open(cache_dir)
        assert len(cache) == 0
        self._analyze_all(cache)
        cache.flush()
        # a torn line in any shard must not break loading (the legacy
        # append-only entries.jsonl is still read as a shard)
        legacy = cache_dir / f"v{CACHE_SCHEMA_VERSION}" / "entries.jsonl"
        with legacy.open("a") as fh:
            fh.write('{"key": "torn", "tot')
        reloaded = WcetAnalysisCache.open(cache_dir)
        assert len(reloaded) == len(cache)

    def test_read_cache_dir_stats_aggregates(self, tmp_path):
        from repro.wcet.cache import read_cache_dir_stats

        cache_dir = tmp_path / "cache"
        assert read_cache_dir_stats(cache_dir)["entries"] == 0
        first = WcetAnalysisCache.open(cache_dir)
        self._analyze_all(first)
        first.flush()
        second = WcetAnalysisCache.open(cache_dir)
        self._analyze_all(second)
        second.flush()
        totals = read_cache_dir_stats(cache_dir)
        assert totals["entries"] == len(first)
        assert totals["misses"] == first.stats.misses
        assert totals["disk_hits"] == second.stats.disk_hits
        assert totals["flushed"] == len(first)

    def test_two_instances_flush_to_disjoint_shards(self, tmp_path):
        """Concurrent flushers own private shard files; load merges them."""
        from repro.wcet.cache import CACHE_SCHEMA_VERSION

        cache_dir = tmp_path / "cache"
        first = WcetAnalysisCache.open(cache_dir)
        second = WcetAnalysisCache.open(cache_dir)
        self._analyze_all(first)
        # second analyses a different platform -> different cost signature
        model, htg, _ = build_case("workloads")
        platform = generic_predictable_multicore(cores=2, shared_latency=16)
        for task in htg.leaf_tasks():
            analyze_task_wcet(task, model.entry, HardwareCostModel(platform, 0), cache=second)
        first.flush()
        second.flush()
        vdir = cache_dir / f"v{CACHE_SCHEMA_VERSION}"
        shards = list(vdir.glob("entries-*.jsonl"))
        assert len(shards) == 2  # one private shard per flushing instance
        # repeated flushes rewrite in place instead of growing new files
        self._analyze_all(second)
        second.flush()
        assert len(list(vdir.glob("entries-*.jsonl"))) == 2
        assert not list(vdir.glob("*.tmp"))  # tempfiles are always replaced
        merged = WcetAnalysisCache.open(cache_dir)
        assert len(merged) == len(first) + len(second) - len(
            set(first._entries) & set(second._entries)
        )

    def test_reattach_flushes_everything_to_new_dir(self, tmp_path):
        cache = WcetAnalysisCache.open(tmp_path / "a")
        self._analyze_all(cache)
        cache.flush()
        entry_count = len(cache)
        # switching directories must make every in-memory entry flushable
        # again, so the new directory gets a complete copy
        cache.load(tmp_path / "b")
        assert cache.flush() == entry_count
        assert len(WcetAnalysisCache.open(tmp_path / "b")) == entry_count

    def test_noop_flush_does_not_touch_disk(self, tmp_path):
        cache = WcetAnalysisCache()
        cache.load(tmp_path / "cache")
        import shutil

        shutil.rmtree(tmp_path / "cache")
        assert cache.flush() == 0  # nothing to write: directory not recreated
        assert not (tmp_path / "cache").exists()

    def test_memos_do_not_pin_analysed_objects(self):
        import gc
        import weakref

        from repro.ir.builder import FunctionBuilder

        fb = FunctionBuilder("ephemeral")
        x = fb.local("x")
        fb.assign(x, 1)
        func = fb.build()
        platform = generic_predictable_multicore(cores=2)
        cache = WcetAnalysisCache()
        cache.function_wcet(func, HardwareCostModel(platform, 0))
        ref = weakref.ref(func)
        del func, fb, x
        gc.collect()
        # the analysed function must be collectable; its identity memos must
        # go with it so a process-lifetime shared cache cannot leak IR trees
        assert ref() is None
        assert not cache._function_fps
        assert not cache._region_fps
        assert len(cache) == 1  # the content-addressed entry itself stays

    def test_shared_cache_honours_env_var(self, tmp_path, monkeypatch):
        from repro.wcet.cache import (
            CACHE_DIR_ENV_VAR,
            CACHE_SCHEMA_VERSION,
            reset_shared_cache,
            shared_cache,
        )

        cache_dir = tmp_path / "shared"
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(cache_dir))
        reset_shared_cache()
        try:
            cache = shared_cache()
            assert cache.cache_dir == cache_dir
            assert shared_cache() is cache
            self._analyze_all(cache)
        finally:
            reset_shared_cache()  # flushes, then detaches from the env var
        versioned = cache_dir / f"v{CACHE_SCHEMA_VERSION}"
        assert list(versioned.glob("entries*.jsonl"))
        monkeypatch.delenv(CACHE_DIR_ENV_VAR)
        reset_shared_cache()
        assert shared_cache().cache_dir is None
