"""Regression tests for the memoized WCET analysis layer.

The cache must be *observationally invisible*: cached and uncached analyses
have to produce byte-identical schedules and WCET bounds on every use case,
and repeated scheduling runs must be deterministic.
"""

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.frontend import compile_diagram
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.ir.builder import FunctionBuilder
from repro.scheduling import WcetAwareListScheduler
from repro.scheduling.schedule import default_core_order
from repro.usecases import ALL_USECASES
from repro.usecases.workloads import synthetic_compiled_model
from repro.wcet import (
    HardwareCostModel,
    WcetAnalysisCache,
    analyze_function_wcet,
    analyze_task_wcet,
    annotate_htg_wcets,
    system_level_wcet,
)

USECASES = ["egpws", "polka", "weaa", "workloads"]


def build_case(usecase, cores=4, chunks=2):
    if usecase == "workloads":
        model = synthetic_compiled_model(num_kernels=6, vector_size=32, seed=1)
    else:
        builder, _ = ALL_USECASES[usecase]
        model = compile_diagram(builder())
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    return model, htg, platform


def schedule_fingerprint(schedule):
    return (
        schedule.mapping,
        schedule.order,
        schedule.wcet_bound,
        schedule.result.task_effective_wcet,
        {tid: (iv.start, iv.end) for tid, iv in schedule.result.task_intervals.items()},
    )


@pytest.mark.parametrize("usecase", USECASES)
class TestCachedEqualsUncached:
    def test_task_analyses_identical(self, usecase):
        model, htg, platform = build_case(usecase)
        cache = WcetAnalysisCache()
        for core_id in (0, 1):
            model_cost = HardwareCostModel(platform, core_id)
            for task in htg.leaf_tasks():
                for average in (False, True):
                    plain = analyze_task_wcet(task, model.entry, model_cost, average=average)
                    cached = analyze_task_wcet(
                        task, model.entry, model_cost, average=average, cache=cache
                    )
                    again = analyze_task_wcet(
                        task, model.entry, model_cost, average=average, cache=cache
                    )
                    for b in (cached, again):
                        assert b.total == plain.total
                        assert b.compute == plain.compute
                        assert b.memory == plain.memory
                        assert b.control == plain.control
                        assert b.shared_accesses == plain.shared_accesses
        assert cache.stats.hits > 0

    def test_system_level_identical(self, usecase):
        model, htg, platform = build_case(usecase)
        mapping = {
            t.task_id: i % platform.num_cores
            for i, t in enumerate(htg.topological_tasks())
            if not t.is_synthetic
        }
        order = default_core_order(htg, mapping)
        plain = system_level_wcet(htg, model.entry, platform, mapping, order)
        cached = system_level_wcet(
            htg, model.entry, platform, mapping, order, cache=WcetAnalysisCache()
        )
        assert cached.makespan == plain.makespan
        assert cached.task_effective_wcet == plain.task_effective_wcet
        assert cached.task_intervals == plain.task_intervals
        assert cached.task_contenders == plain.task_contenders
        assert cached.interference_cycles == plain.interference_cycles
        assert cached.communication_cycles == plain.communication_cycles

    def test_schedules_identical_across_caches(self, usecase):
        model, htg, platform = build_case(usecase)
        private = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        shared_cache = WcetAnalysisCache()
        shared = WcetAwareListScheduler(platform=platform, cache=shared_cache).schedule(
            htg, model.entry
        )
        # a third run reusing the now-warm shared cache
        warm = WcetAwareListScheduler(platform=platform, cache=shared_cache).schedule(
            htg, model.entry
        )
        assert schedule_fingerprint(shared) == schedule_fingerprint(private)
        assert schedule_fingerprint(warm) == schedule_fingerprint(private)
        assert shared_cache.stats.hits > 0

    def test_annotation_identical(self, usecase):
        model, htg, platform = build_case(usecase)
        plain = {t.task_id: (t.wcet, t.acet) for t in htg.leaf_tasks()}
        annotate_htg_wcets(
            htg, model.entry, HardwareCostModel(platform, 0), cache=WcetAnalysisCache()
        )
        cached = {t.task_id: (t.wcet, t.acet) for t in htg.leaf_tasks()}
        assert cached == plain


class TestDeterminism:
    @pytest.mark.parametrize("usecase", USECASES)
    def test_two_schedule_runs_identical(self, usecase):
        model, htg, platform = build_case(usecase)
        first = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        second = WcetAwareListScheduler(platform=platform).schedule(htg, model.entry)
        assert schedule_fingerprint(first) == schedule_fingerprint(second)


class TestCacheBehaviour:
    def _small_function(self):
        fb = FunctionBuilder("f")
        x = fb.local("x")
        fb.assign(x, 1)
        with fb.loop("i", 0, 8) as i:
            fb.assign(x, fb.binop("+", x, i))
        return fb.build()

    def test_homogeneous_cores_share_entries(self):
        model, htg, platform = build_case("workloads")
        cache = WcetAnalysisCache()
        for task in htg.leaf_tasks():
            analyze_task_wcet(task, model.entry, HardwareCostModel(platform, 0), cache=cache)
        misses = cache.stats.misses
        for task in htg.leaf_tasks():
            analyze_task_wcet(task, model.entry, HardwareCostModel(platform, 1), cache=cache)
        # identical cores on a homogeneous platform share cost signatures
        assert cache.stats.misses == misses

    def test_invalidate_function_after_mutation(self):
        func = self._small_function()
        platform = generic_predictable_multicore(cores=2)
        model_cost = HardwareCostModel(platform, 0)
        cache = WcetAnalysisCache()
        before = analyze_function_wcet(func, model_cost, cache=cache).total
        # mutate the IR in place: duplicate the loop statement
        func.body.stmts.append(func.body.stmts[-1])
        cache.invalidate_function(func)
        after = analyze_function_wcet(func, model_cost, cache=cache).total
        assert after > before
        assert after == analyze_function_wcet(func, model_cost).total

    def test_cached_breakdowns_are_isolated_copies(self):
        func = self._small_function()
        platform = generic_predictable_multicore(cores=2)
        model_cost = HardwareCostModel(platform, 0)
        cache = WcetAnalysisCache()
        first = cache.function_wcet(func, model_cost)
        first.total += 1e9  # corrupting the returned object must not leak
        second = cache.function_wcet(func, model_cost)
        assert second.total == first.total - 1e9

    def test_empty_cache_is_truthy(self):
        # an empty cache defines __len__ == 0; it must still be truthy so
        # `cache or default` style code cannot silently drop a shared cache
        cache = WcetAnalysisCache()
        assert len(cache) == 0
        assert bool(cache)

    def test_feedback_shares_cache_across_iterations(self):
        from repro.core import ArgoToolchain, ToolchainConfig
        from repro.usecases import build_egpws_diagram

        platform = generic_predictable_multicore(cores=2)
        chain = ArgoToolchain(platform, ToolchainConfig(loop_chunks=2, feedback_iterations=2))
        chain.run(build_egpws_diagram())
        assert chain.wcet_cache.stats.hits > 0

    def test_clear_resets_entries(self):
        func = self._small_function()
        platform = generic_predictable_multicore(cores=2)
        cache = WcetAnalysisCache()
        cache.function_wcet(func, HardwareCostModel(platform, 0))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
