"""Direct unit tests for :mod:`repro.core.reporting`.

The reports are user-facing plain text consumed by the CLI and the
cross-layer feedback loop; these tests pin the edge cases the end-to-end
use-case tests never hit -- unanalysed schedules, empty HTGs -- and the
structure of the fixed-point convergence section.
"""

from repro.adl.platforms import generic_predictable_multicore
from repro.core import ArgoToolchain, ToolchainConfig
from repro.core.reporting import bottleneck_report, fixed_point_report, toolchain_summary
from repro.htg.graph import HierarchicalTaskGraph
from repro.htg.task import Task, TaskKind
from repro.ir.statements import Block
from repro.scheduling.schedule import Schedule
from repro.usecases import build_egpws_diagram
from repro.utils.intervals import Interval
from repro.wcet.system_level import SystemWcetResult


def _empty_result(**overrides):
    base = dict(
        makespan=0.0,
        task_intervals={},
        task_cores={},
        task_effective_wcet={},
        task_contenders={},
        interference_cycles=0.0,
        communication_cycles=0.0,
        iterations=1,
        converged=True,
    )
    base.update(overrides)
    return SystemWcetResult(**base)


class TestBottleneckReport:
    def test_unanalysed_schedule(self):
        schedule = Schedule(htg_name="g", mapping={}, order={})
        assert bottleneck_report(HierarchicalTaskGraph("g"), schedule) == (
            "(schedule not analysed)"
        )

    def test_empty_htg_renders_headers_only(self):
        htg = HierarchicalTaskGraph("empty")
        schedule = Schedule(htg_name="empty", mapping={}, order={}, result=_empty_result())
        text = bottleneck_report(htg, schedule)
        assert "bottleneck tasks" in text
        assert "effective" in text
        # no task rows: nothing below the header rule
        assert text.rstrip().splitlines()[-1].startswith("-")

    def test_ranks_by_effective_wcet_and_caps_at_top(self):
        htg = HierarchicalTaskGraph("g")
        for tid, wcet in (("a", 10.0), ("b", 5.0), ("c", 1.0)):
            htg.add_task(Task(tid, TaskKind.BLOCK, Block(), origin=f"blk_{tid}", wcet=wcet))
        result = _empty_result(
            makespan=30.0,
            task_intervals={t: Interval(0.0, 10.0) for t in "abc"},
            task_cores={"a": 0, "b": 1, "c": 0},
            task_effective_wcet={"a": 12.0, "b": 20.0, "c": 1.0},
            task_contenders={t: 0 for t in "abc"},
        )
        schedule = Schedule(
            htg_name="g",
            mapping={"a": 0, "b": 1, "c": 0},
            order={0: ["a", "c"], 1: ["b"]},
            result=result,
        )
        text = bottleneck_report(htg, schedule, top=2)
        lines = text.splitlines()
        assert "c" not in {line.split("|")[0].strip() for line in lines}
        # highest effective WCET first, interference = effective - isolated
        b_line = next(line for line in lines if line.split("|")[0].strip() == "b")
        a_line = next(line for line in lines if line.split("|")[0].strip() == "a")
        assert lines.index(b_line) < lines.index(a_line)
        assert "15" in b_line and "blk_b" in b_line


class TestFixedPointReport:
    def test_unanalysed_schedule(self):
        schedule = Schedule(htg_name="g", mapping={}, order={})
        assert fixed_point_report(schedule) == "(schedule not analysed)"

    def test_converged_without_curve(self):
        schedule = Schedule(
            htg_name="g",
            mapping={},
            order={},
            result=_empty_result(iterations=3, converged=True, final_delta=0.0),
        )
        text = fixed_point_report(schedule)
        assert "iterations : 3" in text
        assert "converged  : yes" in text
        assert "final delta: 0 cycles" in text
        assert "delta curve" not in text

    def test_cap_hit_with_curve(self):
        schedule = Schedule(
            htg_name="g",
            mapping={},
            order={},
            result=_empty_result(
                iterations=2,
                converged=False,
                final_delta=4.5,
                iteration_deltas=(96.0, 4.5),
            ),
        )
        text = fixed_point_report(schedule)
        assert "NO (iteration cap hit)" in text
        assert "final delta: 4.5 cycles" in text
        assert "delta curve: [96, 4.5]" in text


class TestToolchainSummary:
    def test_summary_includes_fixed_point_section(self):
        toolchain = ArgoToolchain(
            generic_predictable_multicore(cores=2), ToolchainConfig(loop_chunks=2)
        )
        result = toolchain.run(build_egpws_diagram(lookahead=8))
        text = toolchain_summary(result)
        assert "parallel WCET" in text
        assert "system fixed point" in text
        assert "converged  : yes" in text
        # the fixed-point section precedes the bottleneck table
        assert text.index("system fixed point") < text.index("bottleneck tasks")
