"""Tests for the composable pipeline API: registries, stages, sweep, shim."""

from functools import partial

import pytest

from repro.adl.platforms import generic_predictable_multicore, recore_xentium_like
from repro.core import (
    ArgoToolchain,
    Pipeline,
    PipelineError,
    PipelineResult,
    Stage,
    SweepCase,
    ToolchainConfig,
    ToolchainResult,
    sweep,
    sweep_grid,
)
from repro.frontend import (
    compile_diagram,
    is_interface_signal,
    protected_signal_names,
)
from repro.scheduling import evaluate_mapping
from repro.scheduling.registry import (
    SchedulerRegistryError,
    available_schedulers,
    get_scheduler,
    register_scheduler,
    unregister_scheduler,
)
from repro.transforms.base import FunctionPass, PassReport
from repro.transforms.registry import (
    PassRegistryError,
    available_passes,
    get_pass,
    register_pass,
    unregister_pass,
)
from repro.usecases import build_egpws_diagram, build_polka_diagram


@pytest.fixture(scope="module")
def platform():
    return generic_predictable_multicore(cores=4)


SMALL = dict(loop_chunks=2)


class TestSchedulerRegistry:
    def test_builtin_schedulers_registered(self):
        assert set(available_schedulers()) == {
            "wcet_list",
            "acet_list",
            "sequential",
            "simulated_annealing",
            "genetic",
            "bnb",
        }

    def test_lookup_returns_entry_with_description(self):
        entry = get_scheduler("wcet_list")
        assert entry.name == "wcet_list"
        assert entry.description

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(SchedulerRegistryError, match="wcet_list"):
            get_scheduler("does_not_exist")

    def test_duplicate_registration_rejected(self):
        @register_scheduler("dup_test")
        def first(htg, function, platform, config, cache):  # pragma: no cover
            raise AssertionError

        try:
            with pytest.raises(SchedulerRegistryError, match="already registered"):

                @register_scheduler("dup_test")
                def second(htg, function, platform, config, cache):  # pragma: no cover
                    raise AssertionError

        finally:
            unregister_scheduler("dup_test")
        assert "dup_test" not in available_schedulers()

    def test_third_party_scheduler_runs_through_config(self, platform):
        @register_scheduler("rr_test", description="round robin for tests")
        def round_robin(htg, function, platform, config, cache):
            core_ids = [c.core_id for c in platform.cores]
            if config.max_cores is not None:
                core_ids = core_ids[: config.max_cores]
            leaves = [t for t in htg.topological_tasks() if not t.is_synthetic]
            mapping = {
                t.task_id: core_ids[i % len(core_ids)] for i, t in enumerate(leaves)
            }
            return evaluate_mapping(
                htg, function, platform, mapping, scheduler="rr_test", cache=cache
            )

        try:
            config = ToolchainConfig(scheduler="rr_test", **SMALL)
            result = ArgoToolchain(platform, config).run(build_polka_diagram(pixels=32))
            assert result.schedule.scheduler == "rr_test"
            assert result.system_wcet > 0
        finally:
            unregister_scheduler("rr_test")
        # once unregistered, the name is rejected at config-construction time
        with pytest.raises(ValueError):
            ToolchainConfig(scheduler="rr_test")


class TestPassRegistry:
    def test_builtin_passes_registered(self):
        assert {"constant_folding", "dead_code_elimination", "scratchpad_allocation"} <= set(
            available_passes()
        )

    def test_unknown_pass_rejected_by_config(self):
        with pytest.raises(ValueError, match="unknown transformation pass"):
            ToolchainConfig(passes=["constant_folding", "nope"])

    def test_unknown_pass_lookup_raises(self):
        with pytest.raises(PassRegistryError, match="constant_folding"):
            get_pass("nope")

    def test_ordered_pass_names_drive_the_transforms_stage(self, platform):
        class MarkerPass(FunctionPass):
            name = "marker_test"

            def run(self, function):
                return PassReport(
                    pass_name=self.name, function_name=function.name, changed=False
                )

        @register_pass("marker_test")
        def build_marker(context):
            return MarkerPass()

        try:
            config = ToolchainConfig(passes=["constant_folding", "marker_test"], **SMALL)
            result = ArgoToolchain(platform, config).run(build_polka_diagram(pixels=32))
            assert [r.pass_name for r in result.pass_reports] == [
                "constant_folding",
                "marker_test",
            ]
        finally:
            unregister_pass("marker_test")

    def test_legacy_boolean_knobs_derive_the_pipeline(self):
        assert ToolchainConfig().effective_passes() == (
            "constant_folding",
            "dead_code_elimination",
            "scratchpad_allocation",
        )
        assert ToolchainConfig(
            run_cleanup_passes=False, allocate_scratchpads=False
        ).effective_passes() == ()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"granularity": "nope"},
            {"scheduler": "nope"},
            {"loop_chunks": 0},
            {"feedback_iterations": 0},
            {"max_cores": 0},
            {"max_cores": -2},
            {"contention_weight": -0.5},
            {"contention_weight": float("nan")},
            {"scratchpad_capacity_bytes": 0},
            {"passes": ["nope"]},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ToolchainConfig(**kwargs)

    def test_valid_edge_values_accepted(self):
        ToolchainConfig(max_cores=1, contention_weight=0.0, scratchpad_capacity_bytes=1)


class TestPipelineStages:
    def test_stage_records_and_artifacts(self, platform):
        result = Pipeline(platform, ToolchainConfig(**SMALL)).run(
            build_polka_diagram(pixels=32)
        )
        assert [r.name for r in result.stage_records] == [
            "frontend",
            "transforms",
            "htg",
            "schedule",
            "parallel",
            "wcet",
            "certify",
        ]
        assert all(r.seconds >= 0 for r in result.stage_records)
        assert set(result.timings) == {
            "frontend", "transforms", "htg", "schedule", "parallel", "wcet",
            "certify",
        }
        # typed artifacts of the run are all retained
        for name in ("model", "transformed_model", "htg", "schedule",
                     "parallel_program", "sequential_bound", "pass_reports"):
            assert name in result.artifacts
        assert result.stage("schedule").info["scheduler"] == "wcet_list"
        assert result.stage("htg").info["tasks"] == len(result.htg.leaf_tasks())
        assert result.stage("transforms").info["passes"] == [
            "constant_folding", "dead_code_elimination", "scratchpad_allocation",
        ]
        assert result.cache_stats["misses"] >= 0

    def test_custom_stage_slots_into_the_graph(self, platform):
        def critical_path(context):
            schedule = context.artifact("schedule")
            context.info["bound"] = schedule.wcet_bound
            return {"bound_copy": schedule.wcet_bound}

        pipeline = Pipeline(platform, ToolchainConfig(**SMALL)).with_stage(
            Stage(
                name="bound_copy",
                run=critical_path,
                consumes=("schedule",),
                produces=("bound_copy",),
            )
        )
        result = pipeline.run(build_polka_diagram(pixels=32))
        assert result.artifacts["bound_copy"] == result.system_wcet
        assert result.stage("bound_copy").info["bound"] == result.system_wcet

    def test_unknown_consumed_artifact_rejected(self, platform):
        stage = Stage(name="bad", run=lambda ctx: {}, consumes=("nonexistent",))
        with pytest.raises(PipelineError, match="nonexistent"):
            Pipeline(platform, stages=(stage,))

    def test_duplicate_producer_rejected(self, platform):
        from repro.core.pipeline import default_stages

        clone = Stage(name="clone", run=lambda ctx: {}, produces=("htg",))
        with pytest.raises(PipelineError, match="produced by both"):
            Pipeline(platform, stages=default_stages() + (clone,))

    def test_dependency_cycle_rejected(self, platform):
        a = Stage(name="a", run=lambda ctx: {}, consumes=("b_out",), produces=("a_out",))
        b = Stage(name="b", run=lambda ctx: {}, consumes=("a_out",), produces=("b_out",))
        with pytest.raises(PipelineError, match="cycle"):
            Pipeline(platform, stages=(a, b))

    def test_stage_must_produce_declared_artifacts(self, platform):
        liar = Stage(name="liar", run=lambda ctx: {}, produces=("promised",))
        pipeline = Pipeline(platform, stages=(liar,))
        with pytest.raises(PipelineError, match="promised"):
            pipeline.run(build_polka_diagram(pixels=32))


class TestToolchainShim:
    def test_shim_and_pipeline_agree(self, platform):
        config = ToolchainConfig(**SMALL)
        via_shim = ArgoToolchain(platform, config).run(build_polka_diagram(pixels=32))
        via_pipeline = Pipeline(platform, config).run(build_polka_diagram(pixels=32))
        assert isinstance(via_shim, PipelineResult)
        assert ToolchainResult is PipelineResult
        assert via_shim.system_wcet == via_pipeline.system_wcet
        assert via_shim.sequential_wcet == via_pipeline.sequential_wcet

    def test_sequential_bound_is_constructor_field_with_compat_alias(self, platform):
        result = ArgoToolchain(platform, ToolchainConfig(**SMALL)).run(
            build_polka_diagram(pixels=32)
        )
        assert result.sequential_bound == result.sequential_wcet
        assert result.metadata_sequential == result.sequential_bound
        result.metadata_sequential = 123.0  # legacy writers keep working
        assert result.sequential_bound == 123.0

    def test_scheduler_dispatch_goes_through_registry(self, platform, monkeypatch):
        """Deleting the registry entry must break dispatch (no if/elif left)."""
        import repro.scheduling.registry as registry_module

        toolchain = ArgoToolchain(
            platform, ToolchainConfig(scheduler="sequential", **SMALL)
        )
        monkeypatch.delitem(registry_module._REGISTRY._entries, "sequential")
        with pytest.raises(SchedulerRegistryError):
            toolchain.run(build_polka_diagram(pixels=32))


class TestProtectedSignals:
    def test_prefix_rules(self):
        assert is_interface_signal("sig_a_y")
        assert is_interface_signal("in_scale_u")
        assert is_interface_signal("out_peak_y")
        assert not is_interface_signal("st_block_acc")
        assert not is_interface_signal("p_block_gain")
        assert not is_interface_signal("signal")  # prefix, not substring rules

    def test_protected_names_of_a_compiled_model(self):
        model = compile_diagram(build_polka_diagram(pixels=32))
        protected = protected_signal_names(model.entry)
        assert protected  # inter-block signals exist
        assert all(is_interface_signal(name) for name in protected)
        declared = {decl.name for decl in model.entry.all_decls()}
        assert protected == {name for name in declared if is_interface_signal(name)}


class TestSweep:
    def test_parallel_sweep_matches_sequential_toolchain_loop(self):
        diagrams = [
            partial(build_egpws_diagram, lookahead=16),
            partial(build_polka_diagram, pixels=32),
        ]
        platforms = [
            partial(generic_predictable_multicore, cores=4),
            partial(recore_xentium_like, dsp_cores=4, control_cores=0),
        ]
        configs = [
            ToolchainConfig(scheduler="wcet_list", **SMALL),
            ToolchainConfig(scheduler="sequential", **SMALL),
        ]
        parallel = sweep(
            diagrams=diagrams, platforms=platforms, configs=configs, max_workers=2
        )
        assert parallel.max_workers > 1
        assert parallel.ok
        assert len(parallel) == 8
        # the equivalent hand-rolled sequential loop over ArgoToolchain.run
        cases = sweep_grid(diagrams, platforms, configs)
        for case, outcome in zip(cases, parallel):
            diagram, platform = case.materialize()
            reference = ArgoToolchain(platform, case.config).run(diagram)
            assert outcome.system_wcet == reference.system_wcet  # bit-identical
            assert outcome.sequential_wcet == reference.sequential_wcet
            assert outcome.diagram_name == diagram.name
            assert outcome.platform_name == platform.name

    def test_inline_sweep_keeps_results_and_shares_cache(self, platform):
        from repro.wcet.cache import WcetAnalysisCache

        cache = WcetAnalysisCache()
        result = sweep(
            [
                SweepCase(
                    diagram=build_polka_diagram(pixels=32),
                    platform=platform,
                    config=ToolchainConfig(**SMALL),
                ),
                SweepCase(
                    diagram=build_polka_diagram(pixels=32),
                    platform=platform,
                    config=ToolchainConfig(scheduler="sequential", **SMALL),
                ),
            ],
            cache=cache,
            keep_results=True,
        )
        assert result.ok
        assert all(outcome.result is not None for outcome in result)
        # the second case re-used the first case's code-level analyses
        assert result[1].cache_stats["misses"] < result[0].cache_stats["misses"]
        assert result.best().system_wcet == min(o.system_wcet for o in result)

    def test_failing_case_is_reported_not_raised(self, platform):
        from repro.adl import Core, Platform, ProcessorModel, RoundRobinBus
        from repro.adl.memory import scratchpad, shared_sram

        bad_proc = ProcessorModel("bad", dynamic_branch_prediction=True)
        bad_platform = Platform(
            "bad", [Core(0, bad_proc, scratchpad("s"))], shared_sram(), RoundRobinBus()
        )
        result = sweep(
            [
                SweepCase(
                    diagram=build_polka_diagram(pixels=32),
                    platform=bad_platform,
                    config=ToolchainConfig(**SMALL),
                ),
                SweepCase(
                    diagram=build_polka_diagram(pixels=32),
                    platform=platform,
                    config=ToolchainConfig(**SMALL),
                ),
            ]
        )
        assert not result.ok
        assert len(result.failures()) == 1
        assert "predictability" in result[0].error
        # inline sweeps keep the original exception for callers (the
        # feedback loop re-raises it with type and traceback intact)
        from repro.core import ToolchainError

        assert isinstance(result[0].exception, ToolchainError)
        assert result[1].ok
        rendered = result.render()
        assert "ERROR" in rendered

    def test_sweep_rejects_conflicting_arguments(self, platform):
        case = SweepCase(
            diagram=build_polka_diagram(pixels=32),
            platform=platform,
            config=ToolchainConfig(**SMALL),
        )
        with pytest.raises(ValueError):
            sweep()
        with pytest.raises(ValueError):
            sweep([case], diagrams=[1])
        with pytest.raises(ValueError):
            sweep([case], max_workers=0)
        with pytest.raises(ValueError):
            sweep([case, case], max_workers=2, keep_results=True)

    def test_sweep_table_is_tabular(self, platform):
        result = sweep(
            [
                SweepCase(
                    diagram=build_polka_diagram(pixels=32),
                    platform=platform,
                    config=ToolchainConfig(**SMALL),
                )
            ]
        )
        rows = result.as_dicts()
        assert rows[0]["diagram"] == "polka"
        assert rows[0]["scheduler"] == "wcet_list"
        assert "parallel WCET" in result.render()
