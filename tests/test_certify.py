"""Proof-carrying results: certificate construction and acceptance.

The adversarial side (each checker rejecting a seeded tamper) lives in
``test_certify_tamper.py``; randomized whole-chain smoke lives in
``test_certify_property.py``.
"""

import json

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.analysis.certify import (
    CertificationError,
    build_ipet_certificate,
    build_schedule_certificate,
    certify_pipeline_result,
)
from repro.analysis.report import severity_at_least
from repro.cli import main
from repro.core.config import ToolchainConfig
from repro.core.pipeline import run_pipeline
from repro.scheduling.schedule import Schedule
from repro.usecases import ALL_USECASES
from repro.wcet.hardware_model import HardwareCostModel
from repro.wcet.ipet import IpetResult, ipet_wcet


SMALL = dict(granularity="loop", loop_chunks=2)


@pytest.fixture(scope="module")
def platform():
    return generic_predictable_multicore(cores=4)


@pytest.fixture(scope="module")
def certified_run(platform):
    build, _ = ALL_USECASES["polka"]
    return run_pipeline(
        build(), platform, ToolchainConfig(certify=True, **SMALL)
    )


class TestCertificateChain:
    def test_pipeline_attaches_an_accepted_chain(self, certified_run):
        chain = certified_run.certificates
        assert chain is not None
        assert chain.ok
        assert [r.analysis for r in chain.reports] == [
            "certify_schedule", "certify_fixed_point", "certify_ipet",
        ]
        assert chain.findings() == []
        # the checkers actually did work, they did not vacuously pass
        assert chain.reports[0].checked["tasks_checked"] > 0
        assert chain.reports[1].checked["equations_checked"] > 0
        assert chain.reports[2].checked["edges_checked"] > 0

    @pytest.mark.parametrize("usecase", sorted(ALL_USECASES))
    def test_all_usecases_certify_clean(self, usecase, platform):
        build, _ = ALL_USECASES[usecase]
        result = run_pipeline(build(), platform, ToolchainConfig(**SMALL))
        chain = certify_pipeline_result(result)
        assert chain.ok, [str(f) for f in chain.findings()]

    def test_chain_is_serializable(self, certified_run):
        payload = certified_run.certificates.as_dict()
        assert payload["ok"] is True
        kinds = [c["kind"] for c in payload["certificates"]]
        assert kinds == ["schedule", "fixed_point", "ipet"]
        json.dumps(payload)  # fully JSON-able, no tuples/sets left

    def test_certify_off_yields_none_artifact(self, platform):
        build, _ = ALL_USECASES["polka"]
        result = run_pipeline(build(), platform, ToolchainConfig(**SMALL))
        assert result.certificates is None
        assert "certify" in result.timings

    def test_derive_facts_path_also_accepts(self, certified_run):
        chain = certify_pipeline_result(certified_run, derive_facts=True)
        assert chain.ok

    def test_ipet_result_carries_the_lp_witness(self, certified_run, platform):
        result = ipet_wcet(
            certified_run.model.entry, HardwareCostModel(platform, 0)
        )
        assert result.edge_counts
        assert result.block_costs
        assert result.duals is not None
        assert set(result.duals) == {"flow", "entry", "exit", "loop"}

    def test_schedule_certify_method(self, certified_run, platform):
        report = certified_run.schedule.certify(certified_run.htg, platform)
        assert report.ok
        assert report.checked["tasks_checked"] > 0


class TestConstructionErrors:
    def test_unanalysed_schedule_is_rejected(self, certified_run, platform):
        bare = Schedule(
            htg_name="x",
            mapping=dict(certified_run.schedule.mapping),
            order=dict(certified_run.schedule.order),
        )
        with pytest.raises(ValueError, match="unanalysed"):
            build_schedule_certificate(bare, certified_run.htg, platform)

    def test_witnessless_ipet_result_is_rejected(self, certified_run):
        hollow = IpetResult(wcet=1.0, block_counts={}, cfg=None)
        with pytest.raises(ValueError, match="witness"):
            build_ipet_certificate(hollow, "f")

    def test_config_certify_must_be_bool(self):
        with pytest.raises(ValueError, match="certify"):
            ToolchainConfig(certify="yes")

    def test_certify_without_platform_artifact(self, certified_run):
        class Hollow:
            artifacts = {}

        with pytest.raises(CertificationError, match="platform"):
            certify_pipeline_result(Hollow())


class TestSeverityThreshold:
    @pytest.mark.parametrize(
        ("severity", "threshold", "expected"),
        [
            ("error", "error", True),
            ("warning", "error", False),
            ("error", "warning", True),
            ("info", "warning", False),
            ("info", "info", True),
        ],
    )
    def test_ordering(self, severity, threshold, expected):
        assert severity_at_least(severity, threshold) is expected

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            severity_at_least("fatal", "error")


class TestCertifyCli:
    def test_clean_target_exits_zero(self, capsys):
        assert main(["certify", "polka"]) == 0
        out = capsys.readouterr().out
        assert "polka: clean" in out
        assert "certify_ipet" in out

    def test_json_payload(self, capsys):
        assert main(["certify", "polka", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == 0
        assert payload["targets"][0]["ok"] is True
        assert [r["analysis"] for r in payload["targets"][0]["reports"]] == [
            "certify_schedule", "certify_fixed_point", "certify_ipet",
        ]

    def test_unknown_target_is_usage_error(self, capsys):
        assert main(["certify", "no_such_thing"]) == 2
        assert "unknown certify target" in capsys.readouterr().err

    def test_lint_gains_fail_on(self, capsys):
        # a clean target is exit 0 under every threshold
        assert main(["lint", "polka", "--fail-on", "error"]) == 0
