"""Tests for the system-level result tier, eviction and stage caching.

Three subsystems of the two-tier result cache land here:

* :class:`repro.wcet.cache.SystemResultCache` -- memoized system-level
  fixed-point results (in-memory, cross-instance and cross-process);
* :meth:`repro.wcet.cache.WcetAnalysisCache.evict` -- the size/age-bounded
  eviction policy for shared cache directories;
* :class:`repro.core.pipeline.StageArtifactCache` -- opt-in per-stage
  artifact reuse with hit/miss deltas in ``PipelineResult.cache_stats``.

Everything here shares one correctness bar with the code-level tier: caches
must be observationally invisible (bit-identical results, warm or cold).
"""

import json
from functools import partial

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.core import (
    Pipeline,
    StageArtifactCache,
    SweepCase,
    ToolchainConfig,
    sweep,
)
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.scheduling.schedule import default_core_order
from repro.usecases import build_egpws_diagram, build_polka_diagram
from repro.usecases.workloads import synthetic_compiled_model
from repro.wcet import (
    CACHE_SCHEMA_VERSION,
    HardwareCostModel,
    SystemResultCache,
    WcetAnalysisCache,
    annotate_htg_wcets,
    platform_signature,
    read_cache_dir_stats,
    system_level_wcet,
)

SMALL = dict(loop_chunks=2)


def build_mapped_case(cores=4, chunks=2, num_kernels=6, seed=1):
    model = synthetic_compiled_model(num_kernels=num_kernels, vector_size=32, seed=seed)
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=chunks))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    mapping = {
        t.task_id: i % cores
        for i, t in enumerate(htg.topological_tasks())
        if not t.is_synthetic
    }
    order = default_core_order(htg, mapping)
    return model, htg, platform, mapping, order


def result_fingerprint(result):
    return (
        result.makespan,
        {tid: (iv.start, iv.end) for tid, iv in result.task_intervals.items()},
        result.task_cores,
        result.task_effective_wcet,
        result.task_contenders,
        result.interference_cycles,
        result.communication_cycles,
        result.iterations,
        result.converged,
    )


# ---------------------------------------------------------------------- #
# SystemResultCache
# ---------------------------------------------------------------------- #
class TestSystemResultCache:
    def test_warm_lookup_skips_fixed_point_and_is_identical(self):
        model, htg, platform, mapping, order = build_mapped_case()
        plain = system_level_wcet(htg, model.entry, platform, mapping, order)
        cache = WcetAnalysisCache()
        cold = system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)
        warm = system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)
        tier = cache.system_results
        assert tier.stats.misses == 1
        assert tier.stats.hits == 1
        assert result_fingerprint(cold) == result_fingerprint(plain)
        assert result_fingerprint(warm) == result_fingerprint(plain)

    def test_hit_returns_fresh_objects(self):
        model, htg, platform, mapping, order = build_mapped_case()
        cache = WcetAnalysisCache()
        first = system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)
        first.task_effective_wcet.clear()  # corrupting a result must not leak
        second = system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)
        assert second.task_effective_wcet

    def test_result_cache_true_means_default_derivation(self):
        model, htg, platform, mapping, order = build_mapped_case()
        cache = WcetAnalysisCache()
        first = system_level_wcet(
            htg, model.entry, platform, mapping, order, cache=cache, result_cache=True
        )
        second = system_level_wcet(
            htg, model.entry, platform, mapping, order, cache=cache, result_cache=True
        )
        assert cache.system_results.stats.hits == 1
        assert result_fingerprint(first) == result_fingerprint(second)
        # without a cache, True degrades to no tier instead of crashing
        bare = system_level_wcet(
            htg, model.entry, platform, mapping, order, result_cache=True
        )
        assert result_fingerprint(bare) == result_fingerprint(first)

    def test_invalid_mhp_backend_rejected_even_on_warm_hits(self):
        from repro.wcet.system_level import SystemWcetError

        model, htg, platform, mapping, order = build_mapped_case()
        cache = WcetAnalysisCache()
        system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)
        # the entry is warm now, but error behaviour must not depend on it
        with pytest.raises(SystemWcetError, match="bogus"):
            system_level_wcet(
                htg, model.entry, platform, mapping, order, cache=cache,
                mhp_backend="bogus",
            )

    def test_result_cache_false_forces_reanalysis(self):
        model, htg, platform, mapping, order = build_mapped_case()
        cache = WcetAnalysisCache()
        system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)
        before = cache.system_results.stats.lookups
        result = system_level_wcet(
            htg, model.entry, platform, mapping, order, cache=cache, result_cache=False
        )
        assert cache.system_results.stats.lookups == before
        assert result.makespan > 0

    def test_key_sensitivity(self):
        model, htg, platform, mapping, order = build_mapped_case()
        tier = WcetAnalysisCache().system_results
        key = tier.result_key(htg, model.entry, platform, mapping, order)
        # a second derivation is stable
        assert key == tier.result_key(htg, model.entry, platform, mapping, order)
        # max_iterations steers the fixed point, so it must be in the key
        assert key != tier.result_key(
            htg, model.entry, platform, mapping, order, max_iterations=3
        )
        # moving one task to another core must change the key
        moved = dict(mapping)
        tid = next(iter(moved))
        moved[tid] = (moved[tid] + 1) % platform.num_cores
        moved_order = default_core_order(htg, moved)
        assert key != tier.result_key(htg, model.entry, platform, moved, moved_order)

    def test_roundtrip_across_instances(self, tmp_path):
        model, htg, platform, mapping, order = build_mapped_case()
        first = WcetAnalysisCache.open(tmp_path / "cache")
        cold = system_level_wcet(htg, model.entry, platform, mapping, order, cache=first)
        assert first.flush() > 0

        # a fresh instance (as a new process would build) must hit disk only
        second = WcetAnalysisCache.open(tmp_path / "cache")
        warm = system_level_wcet(htg, model.entry, platform, mapping, order, cache=second)
        tier = second.system_results
        assert tier.stats.misses == 0
        assert tier.stats.disk_hits == 1
        assert second.stats.misses == 0  # code-level analyses skipped too
        assert result_fingerprint(warm) == result_fingerprint(cold)

    def test_cross_process_persistence_via_parallel_sweep(self, tmp_path):
        cache_dir = tmp_path / "cache"
        grid = dict(
            diagrams=[partial(build_polka_diagram, pixels=32)],
            platforms=[partial(generic_predictable_multicore, cores=2)],
            configs=[ToolchainConfig(**SMALL), ToolchainConfig(loop_chunks=4)],
        )
        cold = sweep(**grid, max_workers=2, cache_dir=str(cache_dir))
        assert cold.ok
        disk = read_cache_dir_stats(cache_dir)
        assert disk["system"]["entries"] >= len(cold)

        # warm in-process pass over the worker-populated directory: zero
        # fixed points, zero code-level re-analyses, identical bounds
        cache = WcetAnalysisCache.open(cache_dir)
        warm = sweep(**grid, cache=cache)
        assert warm.ok
        assert cache.system_results.stats.misses == 0
        assert cache.stats.misses == 0
        assert [(o.system_wcet, o.sequential_wcet) for o in warm] == [
            (o.system_wcet, o.sequential_wcet) for o in cold
        ]

    def test_lru_bound_caps_memory(self):
        tier = SystemResultCache(max_memory_entries=2)
        model, htg, platform, mapping, order = build_mapped_case(cores=2)
        result = system_level_wcet(htg, model.entry, platform, mapping, order)
        for i in range(5):
            tier.put(f"key{i}", result)
        assert len(tier) == 2
        assert tier.get("key4") is not None
        assert tier.get("key0") is None  # evicted from memory

    def test_own_shard_buffer_is_bounded_too(self, tmp_path):
        """Repeated flushes of a long-lived instance must not accrete
        result lines without bound: the own shard obeys the LRU bound."""
        model, htg, platform, mapping, order = build_mapped_case(cores=2)
        result = system_level_wcet(htg, model.entry, platform, mapping, order)
        tier = SystemResultCache(max_memory_entries=2)
        tier.load(tmp_path / "cache")
        for round_ in range(3):
            tier.put(f"key{2 * round_}", result)
            tier.put(f"key{2 * round_ + 1}", result)
            tier.flush()
        shards = list((tmp_path / "cache" / f"v{CACHE_SCHEMA_VERSION}").glob("sys-entries*.jsonl"))
        assert len(shards) == 1
        assert len(shards[0].read_text().splitlines()) == 2

    def test_malformed_disk_records_are_skipped(self, tmp_path):
        cache_dir = tmp_path / "cache"
        vdir = cache_dir / f"v{CACHE_SCHEMA_VERSION}"
        vdir.mkdir(parents=True)
        good = {
            "key": "good",
            "makespan": 1.0,
            "iterations": 1,
            "converged": True,
            "interference": 0.0,
            "communication": 0.0,
            "tasks": {"t": [0.0, 1.0, 1.0, 0, 1.0, 0]},
            "cores": {"t": 0},
        }
        lines = [
            json.dumps(good),
            '{"key": "torn", "makespan"',
            '{"key": "wrong", "makespan": "x", "tasks": {}, "cores": {}}',
        ]
        (vdir / "sys-entries-legacy.jsonl").write_text("\n".join(lines) + "\n")
        tier = SystemResultCache.open(cache_dir)
        assert len(tier) == 1
        assert tier.get("good").makespan == 1.0


# ---------------------------------------------------------------------- #
# eviction policy
# ---------------------------------------------------------------------- #
class TestEviction:
    def _populated(self, tmp_path, **case_kwargs):
        cache = WcetAnalysisCache.open(tmp_path / "cache")
        model, htg, platform, mapping, order = build_mapped_case(**case_kwargs)
        system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)
        cache.flush()
        return cache

    def test_requires_disk_backing(self):
        with pytest.raises(ValueError, match="disk-backed"):
            WcetAnalysisCache().evict(max_entries=1)

    def test_entry_count_bound(self, tmp_path):
        cache = self._populated(tmp_path)
        total = read_cache_dir_stats(tmp_path / "cache")
        on_disk = total["entries"] + total["system"]["entries"]
        assert on_disk > 4
        report = cache.evict(max_entries=4)
        assert report["kept"] == 4
        assert report["evicted"] == on_disk - 4
        after = read_cache_dir_stats(tmp_path / "cache")
        assert after["entries"] + after["system"]["entries"] == 4

    def test_byte_bound(self, tmp_path):
        cache = self._populated(tmp_path)
        vdir = tmp_path / "cache" / f"v{CACHE_SCHEMA_VERSION}"

        def entry_bytes():
            return sum(
                p.stat().st_size
                for p in list(vdir.glob("entries*.jsonl")) + list(vdir.glob("sys-entries*.jsonl"))
            )

        assert entry_bytes() > 2000
        report = cache.evict(max_bytes=2000)
        assert report["kept_bytes"] <= 2000
        assert entry_bytes() <= 2000

    def test_bounded_eviction_does_not_starve_the_system_tier(self, tmp_path):
        """Both tiers are flushed moments apart; a byte/entry bound must not
        systematically discard the system results (each of which replaces an
        entire fixed point) in favour of the newer-by-milliseconds code
        shard."""
        self._populated(tmp_path)
        sys_before = read_cache_dir_stats(tmp_path / "cache")["system"]["entries"]
        assert sys_before > 0
        # a bystander instance (nothing hot) under a tight entry bound
        bystander = WcetAnalysisCache.open(tmp_path / "cache")
        bystander.evict(max_entries=sys_before + 2)
        after = read_cache_dir_stats(tmp_path / "cache")
        assert after["system"]["entries"] == sys_before
        assert after["entries"] == 2

    def test_byte_bound_cutoff_is_rank_monotonic(self, tmp_path):
        """Once the byte budget refuses an entry, no lower-ranked entry may
        be kept: packing small cold entries around a dropped big hot/new
        one would violate the 'just-used entries survive first' promise."""
        vdir = tmp_path / "cache" / f"v{CACHE_SCHEMA_VERSION}"
        vdir.mkdir(parents=True)
        lines = []
        for key in ("a", "b", "c", "d", "e"):
            record = {"key": key, "total": 1.0, "compute": 1.0, "memory": 0.0,
                      "control": 0.0, "shared_accesses": 0}
            if key == "c":  # oversized entry in the middle of the rank order
                record["padding"] = "x" * 600
            lines.append(json.dumps(record))
        (vdir / "entries-seed.jsonl").write_text("\n".join(lines) + "\n")
        cache = WcetAnalysisCache.open(tmp_path / "cache")
        small = len(lines[0].encode()) + 1
        # fits a+b with room to spare for d and e, but not for the big c
        report = cache.evict(max_bytes=4 * small)
        assert report["kept"] == 2
        survivors = set()
        for path in vdir.glob("entries*.jsonl"):
            for line in path.read_text().splitlines():
                survivors.add(json.loads(line)["key"])
        # d and e would have fit, but rank monotonicity forbids keeping them
        assert survivors == {"a", "b"}

    def test_other_schema_versions_untouched(self, tmp_path):
        cache = self._populated(tmp_path)
        foreign = tmp_path / "cache" / "v0"
        foreign.mkdir()
        (foreign / "entries.jsonl").write_text('{"key":"old","total":1}\n')
        cache.evict(max_entries=1)
        assert (foreign / "entries.jsonl").read_text() == '{"key":"old","total":1}\n'

    def test_just_used_entries_survive(self, tmp_path):
        import os
        import time as time_module

        cache_dir = tmp_path / "cache"
        # an old shard full of foreign entries, aged well into the past
        vdir = cache_dir / f"v{CACHE_SCHEMA_VERSION}"
        vdir.mkdir(parents=True)
        stale = vdir / "entries-stale.jsonl"
        stale.write_text(
            "\n".join(
                json.dumps(
                    {"key": f"stale{i}", "total": 1.0, "compute": 1.0, "memory": 0.0,
                     "control": 0.0, "shared_accesses": 0}
                )
                for i in range(50)
            )
            + "\n"
        )
        old = time_module.time() - 3600
        os.utime(stale, (old, old))

        cache = WcetAnalysisCache.open(cache_dir)
        model, htg, platform, mapping, order = build_mapped_case(cores=2)
        live = system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)
        used = cache.stats.misses
        report = cache.evict(max_entries=used + 1)  # room for code tier + 1 result
        assert report["kept"] == used + 1
        # everything this process just used survived; only stale keys went
        survivors = set()
        for path in vdir.glob("entries*.jsonl"):
            for line in path.read_text().splitlines():
                survivors.add(json.loads(line)["key"])
        assert not any(key.startswith("stale") for key in survivors)
        # ... and a fresh instance still serves the live result from disk
        fresh = WcetAnalysisCache.open(cache_dir)
        warm = system_level_wcet(htg, model.entry, platform, mapping, order, cache=fresh)
        assert fresh.system_results.stats.disk_hits == 1
        assert result_fingerprint(warm) == result_fingerprint(live)

    def test_concurrent_evict_cannot_lose_a_live_writers_entries(self, tmp_path):
        """An evictor deletes every shard it does not own; a live writer
        must restore its own flushed entries on the next flush instead of
        believing they are still persisted."""
        writer = self._populated(tmp_path)
        flushed = len(writer)
        # a second process evicts everything while the writer is still alive
        bystander = WcetAnalysisCache.open(tmp_path / "cache")
        bystander.evict(max_entries=0)
        totals = read_cache_dir_stats(tmp_path / "cache")
        assert totals["entries"] == 0 and totals["system"]["entries"] == 0
        # the writer's next flush self-heals its own shard
        writer.flush()
        totals = read_cache_dir_stats(tmp_path / "cache")
        assert totals["entries"] == flushed
        assert totals["system"]["entries"] == 1

    def test_age_bound_drops_only_unused_entries(self, tmp_path):
        import os
        import time as time_module

        cache = self._populated(tmp_path)
        vdir = tmp_path / "cache" / f"v{CACHE_SCHEMA_VERSION}"
        for path in vdir.glob("*.jsonl"):
            old = time_module.time() - 7 * 86400
            os.utime(path, (old, old))
        # the owning instance used every entry, so age alone evicts nothing
        report = cache.evict(max_age_seconds=86400)
        assert report["evicted"] == 0
        # a bystander instance that never used them loses the aged entries
        bystander = WcetAnalysisCache.open(tmp_path / "cache")
        for path in vdir.glob("*.jsonl"):
            old = time_module.time() - 7 * 86400
            os.utime(path, (old, old))
        report = bystander.evict(max_age_seconds=86400)
        assert report["kept"] == 0
        assert read_cache_dir_stats(tmp_path / "cache")["entries"] == 0


# ---------------------------------------------------------------------- #
# per-stage artifact cache
# ---------------------------------------------------------------------- #
class TestStageArtifactCache:
    @pytest.fixture()
    def platform(self):
        return generic_predictable_multicore(cores=4)

    def test_identical_runs_hit_and_match(self, platform):
        stage_cache = StageArtifactCache()
        pipeline = Pipeline(platform, ToolchainConfig(**SMALL), stage_cache=stage_cache)
        first = pipeline.run(build_polka_diagram(pixels=32))
        second = pipeline.run(build_polka_diagram(pixels=32))
        assert first.cache_stats["stage_misses"] == 2  # schedule + wcet
        assert first.cache_stats["stage_hits"] == 0
        assert second.cache_stats["stage_hits"] == 2
        assert second.cache_stats["stage_misses"] == 0
        assert second.stage("schedule").info["stage_cache"] == "hit"
        assert first.system_wcet == second.system_wcet
        assert first.sequential_wcet == second.sequential_wcet
        assert first.schedule.mapping == second.schedule.mapping

    def test_config_change_invalidates(self, platform):
        stage_cache = StageArtifactCache()
        Pipeline(platform, ToolchainConfig(**SMALL), stage_cache=stage_cache).run(
            build_polka_diagram(pixels=32)
        )
        changed = Pipeline(
            platform,
            ToolchainConfig(loop_chunks=2, scheduler="sequential"),
            stage_cache=stage_cache,
        ).run(build_polka_diagram(pixels=32))
        assert changed.cache_stats["stage_hits"] == 0
        assert changed.cache_stats["stage_misses"] == 2

    def test_platform_change_invalidates(self, platform):
        stage_cache = StageArtifactCache()
        Pipeline(platform, ToolchainConfig(**SMALL), stage_cache=stage_cache).run(
            build_polka_diagram(pixels=32)
        )
        other = generic_predictable_multicore(cores=4, shared_latency=16)
        changed = Pipeline(
            other, ToolchainConfig(**SMALL), stage_cache=stage_cache
        ).run(build_polka_diagram(pixels=32))
        assert changed.cache_stats["stage_hits"] == 0

    def test_diagram_change_invalidates(self, platform):
        stage_cache = StageArtifactCache()
        Pipeline(platform, ToolchainConfig(**SMALL), stage_cache=stage_cache).run(
            build_polka_diagram(pixels=32)
        )
        changed = Pipeline(
            platform, ToolchainConfig(**SMALL), stage_cache=stage_cache
        ).run(build_egpws_diagram())
        assert changed.cache_stats["stage_hits"] == 0

    def test_cached_schedule_is_a_private_copy(self, platform):
        stage_cache = StageArtifactCache()
        pipeline = Pipeline(platform, ToolchainConfig(**SMALL), stage_cache=stage_cache)
        first = pipeline.run(build_polka_diagram(pixels=32))
        first.schedule.mapping.clear()  # corrupting a result must not leak
        second = pipeline.run(build_polka_diagram(pixels=32))
        assert second.schedule.mapping

    def test_disabled_by_default_and_config_knob_enables(self, platform):
        result = Pipeline(platform, ToolchainConfig(**SMALL)).run(
            build_polka_diagram(pixels=32)
        )
        assert result.cache_stats["stage_hits"] == 0
        assert result.cache_stats["stage_misses"] == 0
        config = ToolchainConfig(loop_chunks=2, stage_cache=True)
        a = Pipeline(platform, config).run(build_polka_diagram(pixels=32))
        b = Pipeline(platform, config).run(build_polka_diagram(pixels=32))
        assert b.cache_stats["stage_hits"] == 2
        assert a.system_wcet == b.system_wcet

    def test_cached_info_is_isolated_too(self):
        cache = StageArtifactCache()
        cache.store("s", "k", {"a": 1}, {"passes": ["x"]})
        _, info = cache.lookup("s", "k")
        info["passes"].append("y")  # corrupting returned info must not leak
        _, again = cache.lookup("s", "k")
        assert again["passes"] == ["x"]

    def test_platform_signature_distinguishes_component_subclasses(self):
        """A behaviour-overriding subclass with unchanged dataclass fields
        must never digest identically to the base component."""
        from repro.adl.processor import ProcessorModel

        class TweakedProcessor(ProcessorModel):
            def cycles_for_op(self, op: str) -> float:  # pragma: no cover
                return 999.0

        stock = generic_predictable_multicore(cores=2)
        tweaked = generic_predictable_multicore(cores=2)
        base_proc = tweaked.cores[0].processor
        import dataclasses as dc

        tweaked.cores[0].processor = TweakedProcessor(
            **{f.name: getattr(base_proc, f.name) for f in dc.fields(base_proc)}
        )
        assert platform_signature(stock) is not None
        assert platform_signature(stock) != platform_signature(tweaked)
        # identical content still digests identically across rebuilds
        assert platform_signature(stock) == platform_signature(
            generic_predictable_multicore(cores=2)
        )

    def test_lru_bound(self):
        cache = StageArtifactCache(max_entries=1)
        cache.store("s", "k1", {"a": 1}, {})
        cache.store("s", "k2", {"a": 2}, {})
        assert len(cache) == 1
        assert cache.lookup("s", "k1") is None
        assert cache.lookup("s", "k2")[0] == {"a": 2}

    def test_wcet_stage_key_pins_the_consumed_schedule(self, platform):
        """A custom schedule stage producing a different schedule must not
        replay the default schedule's cached wcet-stage diagnostics."""
        from repro.core import Stage
        from repro.scheduling import evaluate_mapping

        def all_on_core0(context):
            htg = context.artifact("htg")
            model = context.artifact("transformed_model")
            mapping = {
                t.task_id: 0 for t in htg.leaf_tasks() if not t.is_synthetic
            }
            schedule = evaluate_mapping(
                htg, model.entry, context.platform, mapping,
                scheduler="all_on_core0", cache=context.wcet_cache,
            )
            return {"schedule": schedule}

        stage_cache = StageArtifactCache()
        default = Pipeline(
            platform, ToolchainConfig(**SMALL), stage_cache=stage_cache
        )
        first = default.run(build_polka_diagram(pixels=32))
        custom = default.replace_stage(
            "schedule",
            Stage(
                name="schedule",
                run=all_on_core0,
                consumes=("transformed_model", "htg"),
                produces=("schedule",),
            ),
        )
        second = custom.run(build_polka_diagram(pixels=32))
        assert second.system_wcet != first.system_wcet  # genuinely different
        # the wcet stage must re-run (its consumed schedule changed), and
        # its diagnostics must describe the *new* schedule
        assert second.stage("wcet").info.get("stage_cache") != "hit"
        assert second.stage("wcet").info["system_wcet"] == second.system_wcet

    def test_reregistered_scheduler_invalidates_schedule_stage(self, platform):
        """The registry supports replace=True; the cached schedule must be
        keyed by the implementation behind the name, not the name alone."""
        from repro.scheduling import evaluate_mapping
        from repro.scheduling.registry import register_scheduler, unregister_scheduler

        def fixed_core(core):
            def build(htg, function, platform_, config, cache):
                mapping = {
                    t.task_id: core for t in htg.leaf_tasks() if not t.is_synthetic
                }
                return evaluate_mapping(
                    htg, function, platform_, mapping, scheduler="swap_test", cache=cache
                )

            return build

        register_scheduler("swap_test")(fixed_core(0))
        try:
            stage_cache = StageArtifactCache()
            config = ToolchainConfig(loop_chunks=2, scheduler="swap_test")
            first = Pipeline(platform, config, stage_cache=stage_cache).run(
                build_polka_diagram(pixels=32)
            )
            assert set(first.schedule.mapping.values()) == {0}
            register_scheduler("swap_test", replace=True)(fixed_core(1))
            second = Pipeline(platform, config, stage_cache=stage_cache).run(
                build_polka_diagram(pixels=32)
            )
            # the new implementation must actually run, not be replayed
            assert second.stage("schedule").info.get("stage_cache") != "hit"
            assert set(second.schedule.mapping.values()) == {1}

            # the hard case: unregister first, so the old callable is freed
            # and CPython may hand its address to the replacement -- id()
            # alone would collide here and replay the stale schedule
            import gc

            unregister_scheduler("swap_test")
            gc.collect()
            register_scheduler("swap_test")(fixed_core(2))
            third = Pipeline(platform, config, stage_cache=stage_cache).run(
                build_polka_diagram(pixels=32)
            )
            assert third.stage("schedule").info.get("stage_cache") != "hit"
            assert set(third.schedule.mapping.values()) == {2}
        finally:
            unregister_scheduler("swap_test")

    def test_sweep_stage_cache_dedupes_repeated_cases(self, platform):
        case = SweepCase(
            diagram=build_polka_diagram(pixels=32),
            platform=platform,
            config=ToolchainConfig(**SMALL),
        )
        result = sweep([case, case], stage_cache=True)
        assert result.ok
        assert result[0].cache_stats["stage_misses"] == 2
        assert result[1].cache_stats["stage_hits"] == 2
        assert result[0].system_wcet == result[1].system_wcet

    def test_uncacheable_platform_is_skipped_not_cached(self, platform):
        from repro.adl.interconnect import Interconnect

        class CustomBus(Interconnect):  # not a dataclass: cannot introspect
            name = "custom_bus"

            def worst_case_access_delay(self, contenders: int) -> float:
                return 1.0 + contenders

        custom = generic_predictable_multicore(cores=2)
        # platform_signature must refuse a fabric it cannot fingerprint
        custom.interconnect = CustomBus()
        assert platform_signature(custom) is None
        stage_cache = StageArtifactCache()
        a = Pipeline(custom, ToolchainConfig(**SMALL), stage_cache=stage_cache).run(
            build_polka_diagram(pixels=32)
        )
        b = Pipeline(custom, ToolchainConfig(**SMALL), stage_cache=stage_cache).run(
            build_polka_diagram(pixels=32)
        )
        # neither hits nor stale reuse: the stage simply is not cacheable
        assert a.cache_stats["stage_hits"] == b.cache_stats["stage_hits"] == 0
        assert len(stage_cache) == 0
        assert a.system_wcet == b.system_wcet


# ---------------------------------------------------------------------- #
# sweep cache plumbing (satellite bugfixes)
# ---------------------------------------------------------------------- #
class TestSweepCachePlumbing:
    @pytest.fixture()
    def platform(self):
        return generic_predictable_multicore(cores=4)

    def _case(self, platform, **config_kwargs):
        return SweepCase(
            diagram=build_polka_diagram(pixels=32),
            platform=platform,
            config=ToolchainConfig(**{**SMALL, **config_kwargs}),
        )

    def test_explicit_cache_with_cache_dir_persists(self, tmp_path, platform):
        cache = WcetAnalysisCache()
        result = sweep([self._case(platform)], cache=cache, cache_dir=str(tmp_path / "c"))
        assert result.ok
        assert cache.cache_dir == tmp_path / "c"
        disk = read_cache_dir_stats(tmp_path / "c")
        assert disk["entries"] == cache.stats.misses > 0
        assert disk["system"]["entries"] > 0
        # and a later sweep with a fresh explicit cache is served from disk
        fresh = WcetAnalysisCache()
        warm = sweep([self._case(platform)], cache=fresh, cache_dir=str(tmp_path / "c"))
        assert warm.ok
        assert fresh.stats.misses == 0
        assert fresh.system_results.stats.misses == 0

    def test_explicit_cache_without_cache_dir_stays_memory_only(self, platform):
        cache = WcetAnalysisCache()
        result = sweep([self._case(platform)], cache=cache)
        assert result.ok
        assert cache.cache_dir is None

    @pytest.mark.parametrize("cases", [1, 2])
    def test_parallel_validation_independent_of_case_count(self, platform, cases):
        case_list = [self._case(platform) for _ in range(cases)]
        with pytest.raises(ValueError, match="keep_results"):
            sweep(case_list, max_workers=2, keep_results=True)
        with pytest.raises(ValueError, match="in-memory cache"):
            sweep(case_list, max_workers=2, cache=WcetAnalysisCache())

    def test_outcome_dicts_are_copies_and_serialized(self, platform):
        result = sweep([self._case(platform)], keep_results=True)
        outcome = result[0]
        assert outcome.stage_seconds  # populated from the pipeline timings
        pipeline_result = outcome.result
        outcome.stage_seconds["schedule"] = -1.0
        outcome.cache_stats["misses"] = -1
        assert pipeline_result.timings["schedule"] >= 0
        assert pipeline_result.cache_stats["misses"] >= 0
        record = outcome.as_dict()
        assert record["stage_seconds"] == outcome.stage_seconds
        assert record["cache_stats"] == outcome.cache_stats
        assert record["stage_seconds"] is not outcome.stage_seconds
        json.dumps(record)  # tabular records must stay JSON-serializable


# ---------------------------------------------------------------------- #
# maintenance CLI
# ---------------------------------------------------------------------- #
class TestCacheCli:
    def test_stats_and_evict_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        cache = WcetAnalysisCache.open(tmp_path / "cache")
        model, htg, platform, mapping, order = build_mapped_case(cores=2)
        system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)
        cache.flush()
        assert main(["cache", "stats", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "fixed points run" in out
        assert main(["cache", "evict", str(tmp_path / "cache"), "--max-entries", "3"]) == 0
        totals = read_cache_dir_stats(tmp_path / "cache")
        assert totals["entries"] + totals["system"]["entries"] == 3

    def test_evict_refuses_missing_directory(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "no-such-cache"
        assert main(["cache", "evict", str(missing), "--max-entries", "1"]) == 2
        assert "no such cache directory" in capsys.readouterr().err
        assert not missing.exists()  # and it must not be created as a side effect

    def test_stats_refuses_missing_directory(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "no-such-cache"
        assert main(["cache", "stats", str(missing)]) == 2
        assert "no such cache directory" in capsys.readouterr().err
        assert not missing.exists()

    def test_evict_requires_a_bound(self, tmp_path):
        from repro.cli import main

        assert main(["cache", "evict", str(tmp_path)]) == 2
