"""Tests for the IR node classes, builder, printer and type system."""

import pytest

from repro.ir import (
    INT,
    FLOAT,
    BOOL,
    ArrayType,
    Assign,
    BinOp,
    Block,
    Call,
    Const,
    For,
    FunctionBuilder,
    If,
    Return,
    ScalarKind,
    UnOp,
    Var,
    While,
    to_c,
)
from repro.ir.expressions import ArrayRef, substitute, try_evaluate_constant
from repro.ir.statements import collect_loops, count_statements
from repro.ir.types import is_array, is_scalar


class TestTypes:
    def test_scalar_sizes(self):
        assert INT.size_bytes == 4
        assert BOOL.size_bytes == 1
        assert str(FLOAT) == "float"

    def test_array_type_size(self):
        ty = ArrayType(FLOAT, (4, 8))
        assert ty.num_elements == 32
        assert ty.size_bytes == 128
        assert ty.ndim == 2
        assert "[4][8]" in str(ty)

    def test_array_type_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ArrayType(FLOAT, ())
        with pytest.raises(ValueError):
            ArrayType(FLOAT, (0,))

    def test_predicates(self):
        assert is_array(ArrayType(INT, (3,)))
        assert is_scalar(FLOAT)
        assert not is_scalar(ArrayType(INT, (3,)))


class TestExpressions:
    def test_const_type_inference(self):
        assert Const(True).type == BOOL
        assert Const(3).type.kind is ScalarKind.INT
        assert Const(3.5).type.kind is ScalarKind.FLOAT

    def test_binop_type_promotion(self):
        e = BinOp("+", Const(1), Const(2.0))
        assert e.type.kind is ScalarKind.FLOAT
        assert BinOp("<", Const(1), Const(2)).type == BOOL

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", Const(1), Const(2))
        with pytest.raises(ValueError):
            UnOp("~", Const(1))
        with pytest.raises(ValueError):
            Call("not_an_intrinsic", (Const(1),))

    def test_variables_read(self):
        x, y = Var("x"), Var("y")
        expr = BinOp("+", BinOp("*", x, y), ArrayRef("buf", (Var("i", INT),)))
        assert expr.variables_read() == {"x", "y", "buf", "i"}

    def test_operation_count(self):
        expr = BinOp("+", BinOp("*", Var("x"), Var("y")), Call("sqrt", (Var("z"),)))
        counts = expr.operation_count()
        assert counts == {"+": 1, "*": 1, "sqrt": 1}

    def test_substitute_replaces_scalars_only(self):
        expr = BinOp("+", Var("i"), ArrayRef("a", (Var("i", INT),)))
        new = substitute(expr, {"i": Const(3)})
        assert "3" in str(new)
        assert new.variables_read() == {"a"}

    def test_constant_folding_helper(self):
        assert try_evaluate_constant(BinOp("+", Const(2), Const(3))) == 5
        assert try_evaluate_constant(BinOp("min", Const(2), Const(3))) == 2
        assert try_evaluate_constant(Call("max", (Const(2), Const(9)))) == 9
        assert try_evaluate_constant(BinOp("+", Var("x"), Const(3))) is None
        assert try_evaluate_constant(BinOp("/", Const(1), Const(0))) is None

    def test_operator_sugar(self):
        x = Var("x")
        expr = x * 2.0 + 1.0
        assert isinstance(expr, BinOp)
        assert expr.op == "+"
        assert isinstance(-x, UnOp)


class TestBuilderAndStatements:
    def test_builder_produces_valid_function(self):
        fb = FunctionBuilder("saxpy")
        x = fb.input_array("x", (16,))
        y = fb.output_array("y", (16,))
        a = fb.scalar_input("a")
        with fb.loop("i", 0, 16) as i:
            fb.assign(fb.at(y, i), fb.at(x, i) * a)
        func = fb.build()
        assert func.name == "saxpy"
        assert len(func.params) == 3
        loops = collect_loops(func.body)
        assert len(loops) == 1
        assert isinstance(loops[0], For)

    def test_builder_validation_catches_undeclared(self):
        fb = FunctionBuilder("bad")
        fb.assign(Var("undeclared"), Const(1.0))
        with pytest.raises(ValueError, match="undeclared"):
            fb.build()

    def test_if_else_builder(self):
        fb = FunctionBuilder("absval")
        x = fb.scalar_input("x")
        y = fb.local("y")
        with fb.if_then(BinOp("<", x, Const(0.0))):
            fb.assign(y, -x)
        with fb.orelse():
            fb.assign(y, x)
        func = fb.build()
        if_stmt = func.body.stmts[0]
        assert isinstance(if_stmt, If)
        assert len(if_stmt.then_body.stmts) == 1
        assert len(if_stmt.else_body.stmts) == 1

    def test_orelse_without_if_raises(self):
        fb = FunctionBuilder("f")
        with pytest.raises(ValueError):
            with fb.orelse():
                pass

    def test_nested_loops_and_count(self):
        fb = FunctionBuilder("mm")
        a = fb.input_array("a", (4, 4))
        b = fb.input_array("b", (4, 4))
        c = fb.output_array("c", (4, 4))
        acc = fb.local("acc")
        with fb.loop("i", 0, 4) as i:
            with fb.loop("j", 0, 4) as j:
                fb.assign(acc, 0.0)
                with fb.loop("k", 0, 4) as k:
                    fb.assign(acc, acc + fb.at(a, i, k) * fb.at(b, k, j))
                fb.assign(fb.at(c, i, j), acc)
        func = fb.build()
        assert len(collect_loops(func.body)) == 3
        assert count_statements(func.body) > 5

    def test_while_requires_bound(self):
        with pytest.raises(ValueError):
            While(cond=Const(True), body=Block(), max_trip_count=-1)

    def test_for_rejects_zero_step(self):
        with pytest.raises(ValueError):
            For(index=Var("i", INT), lower=Const(0), upper=Const(4), body=Block(), step=0)

    def test_statement_ids_unique(self):
        a = Assign(Var("x"), Const(1))
        b = Assign(Var("x"), Const(1))
        assert a.sid != b.sid

    def test_duplicate_declaration_conflict(self):
        fb = FunctionBuilder("f")
        fb.local("x", INT)
        with pytest.raises(ValueError):
            fb.local_array("x", (4,))


class TestPrinter:
    def test_prints_compilable_looking_c(self):
        fb = FunctionBuilder("kernel")
        x = fb.input_array("x", (8,))
        y = fb.output_array("y", (8,))
        with fb.loop("i", 0, 8) as i:
            with fb.if_then(BinOp(">", fb.at(x, i), Const(0.0))):
                fb.assign(fb.at(y, i), Call("sqrt", (fb.at(x, i),)))
            with fb.orelse():
                fb.assign(fb.at(y, i), Const(0.0))
        text = to_c(fb.build())
        assert "void kernel(" in text
        assert "for (int i = 0; i < 8; i++)" in text
        assert "sqrt(" in text
        assert text.count("{") == text.count("}")

    def test_prints_storage_qualifiers(self):
        fb = FunctionBuilder("f")
        fb.shared_array("buf", (32,))
        fb.assign(fb.at(Var("buf", ArrayType(FLOAT, (32,))), 0), 1.0)
        text = to_c(fb.build())
        assert "__shared" in text

    def test_prints_expression_and_return(self):
        assert to_c(BinOp("+", Var("a"), Const(1))) == "(a + 1)"
        assert to_c(Return(Var("a"))) == "return a;"
