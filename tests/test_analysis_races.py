"""Tests for the static schedule race checker and its pipeline/codegen gates."""

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.analysis import check_races
from repro.core.config import ToolchainConfig
from repro.core.pipeline import run_pipeline
from repro.frontend import compile_diagram
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.htg.graph import HierarchicalTaskGraph
from repro.htg.task import Task, TaskKind
from repro.ir import FunctionBuilder
from repro.ir.expressions import ArrayRef, BinOp, Const, Var
from repro.ir.statements import Assign, Block, For
from repro.ir.types import INT
from repro.model import Diagram, library
from repro.parallel.codegen import CodegenRaceError, parallel_program_to_c
from repro.parallel.model import CoreProgram, ParallelProgram
from repro.scheduling.schedule import Schedule, default_core_order
from repro.usecases import ALL_USECASES

USECASES = sorted(ALL_USECASES)


# ---------------------------------------------------------------------- #
# checker unit tests on a hand-built HTG
# ---------------------------------------------------------------------- #
def two_tasks(t1_writes, t1_reads, t2_writes, t2_reads):
    fb = FunctionBuilder("f")
    buf = fb.shared_array("buf", (8,))
    fb.assign(fb.at(buf, 0), 1.0)
    func = fb.build()
    htg = HierarchicalTaskGraph("h")
    htg.add_task(
        Task("t1", TaskKind.BLOCK, Block(), writes=set(t1_writes), reads=set(t1_reads))
    )
    htg.add_task(
        Task("t2", TaskKind.BLOCK, Block(), writes=set(t2_writes), reads=set(t2_reads))
    )
    return func, htg


CROSS = ({"t1": 0, "t2": 1}, {0: ["t1"], 1: ["t2"]})


class TestCheckRaces:
    def test_unordered_write_read_is_a_race(self):
        func, htg = two_tasks({"buf"}, (), (), {"buf"})
        mapping, order = CROSS
        report = check_races(htg, mapping, order, func)
        assert not report.ok
        assert [f.code for f in report.findings] == ["race.write-read"]
        assert report.findings[0].subject == "t1<->t2"

    def test_unordered_write_write_is_a_race(self):
        func, htg = two_tasks({"buf"}, (), {"buf"}, ())
        mapping, order = CROSS
        report = check_races(htg, mapping, order, func)
        assert [f.code for f in report.findings] == ["race.write-write"]

    def test_dependence_edge_orders_the_pair(self):
        func, htg = two_tasks({"buf"}, (), (), {"buf"})
        htg.add_edge("t1", "t2")
        mapping, order = CROSS
        report = check_races(htg, mapping, order, func)
        assert report.ok
        assert report.checked["pairs_ordered"] == 1

    def test_same_core_program_order_orders_the_pair(self):
        func, htg = two_tasks({"buf"}, (), (), {"buf"})
        report = check_races(htg, {"t1": 0, "t2": 0}, {0: ["t1", "t2"]}, func)
        assert report.ok

    def test_transitive_ordering_suffices(self):
        func, htg = two_tasks({"buf"}, (), (), {"buf"})
        htg.add_task(Task("mid", TaskKind.BLOCK, Block()))
        htg.add_edge("t1", "mid")
        htg.add_edge("mid", "t2")
        mapping = {"t1": 0, "t2": 1, "mid": 0}
        order = {0: ["t1", "mid"], 1: ["t2"]}
        report = check_races(htg, mapping, order, func)
        assert report.ok

    def test_local_conflicts_are_ignored(self):
        # "tmp" is not declared in SHARED/INPUT/OUTPUT storage
        func, htg = two_tasks({"tmp"}, (), (), {"tmp"})
        mapping, order = CROSS
        report = check_races(htg, mapping, order, func)
        assert report.ok
        assert report.checked["pairs_disjoint"] == 1

    def test_chunk_siblings_with_provably_disjoint_slices_pass(self):
        # two chunks of one split loop writing buf[0..3] and buf[4..7]
        func, htg = two_tasks((), (), (), ())
        for tid, (lo, hi) in (("t1", (0, 4)), ("t2", (4, 8))):
            i = Var("i", INT)
            body = Block([Assign(ArrayRef("buf", (i,)), Const(1.0))])
            htg.tasks[tid].statements = Block(
                [For(index=i, lower=Const(lo), upper=Const(hi), body=body)]
            )
            htg.tasks[tid].kind = TaskKind.LOOP_CHUNK
            htg.tasks[tid].parent = "loop"
            htg.tasks[tid].writes = {"buf"}
        mapping, order = CROSS
        report = check_races(htg, mapping, order, func)
        assert report.ok
        assert report.checked["chunk_pairs_proved_disjoint"] == 1

    def test_unprovable_chunk_overlap_is_a_warning_not_a_pass(self):
        # empty statement bodies: the declared writes force whole-array
        # footprints, so disjointness is undischargeable -> warning
        func, htg = two_tasks((), (), (), ())
        htg.tasks["t1"].kind = TaskKind.LOOP_CHUNK
        htg.tasks["t1"].parent = "loop"
        htg.tasks["t1"].writes = {"buf"}
        htg.tasks["t2"].kind = TaskKind.LOOP_CHUNK
        htg.tasks["t2"].parent = "loop"
        htg.tasks["t2"].writes = {"buf"}
        mapping, order = CROSS
        report = check_races(htg, mapping, order, func)
        assert not report.ok
        assert [f.code for f in report.findings] == ["race.chunk-overlap-unproven"]
        assert report.findings[0].severity == "warning"
        assert report.count("error") == 0

    def test_overlapping_chunk_slices_keep_the_warning(self):
        # stencil-style chunks: t1 writes buf[0..3], t2 reads buf[3] (first
        # index of its slice minus one) -- a real overlap that must never
        # silently pass
        func, htg = two_tasks((), (), (), ())
        i = Var("i", INT)
        htg.tasks["t1"].statements = Block(
            [For(index=i, lower=Const(0), upper=Const(4),
                 body=Block([Assign(ArrayRef("buf", (i,)), Const(1.0))]))]
        )
        htg.tasks["t1"].writes = {"buf"}
        htg.tasks["t2"].statements = Block(
            [For(index=i, lower=Const(4), upper=Const(8),
                 body=Block([Assign(Var("x"),
                                    ArrayRef("buf", (BinOp("-", i, Const(1)),)))]))]
        )
        htg.tasks["t2"].reads = {"buf"}
        for tid in ("t1", "t2"):
            htg.tasks[tid].kind = TaskKind.LOOP_CHUNK
            htg.tasks[tid].parent = "loop"
        mapping, order = CROSS
        report = check_races(htg, mapping, order, func)
        assert [f.code for f in report.findings] == ["race.chunk-overlap-unproven"]

    def test_symbolic_stride_chunks_stay_unproven(self):
        # unknown scalar offset: index ranges are unbounded, overlap cannot
        # be refuted
        func, htg = two_tasks((), (), (), ())
        for tid in ("t1", "t2"):
            htg.tasks[tid].statements = Block(
                [Assign(ArrayRef("buf", (Var("off"),)), Const(1.0))]
            )
            htg.tasks[tid].kind = TaskKind.LOOP_CHUNK
            htg.tasks[tid].parent = "loop"
            htg.tasks[tid].writes = {"buf"}
        mapping, order = CROSS
        report = check_races(htg, mapping, order, func)
        assert [f.code for f in report.findings] == ["race.chunk-overlap-unproven"]


# ---------------------------------------------------------------------- #
# deleting one precedence edge seeds a detectable race
# ---------------------------------------------------------------------- #
def small_pipeline_model(size=16):
    d = Diagram("pipe")
    d.add_block(library.gain("a", 2.0, size=size))
    d.add_block(library.saturation("b", 0.0, 10.0, size=size))
    d.add_block(library.scalar_max("c", size))
    d.connect("a", "y", "b", "u")
    d.connect("b", "y", "c", "u")
    d.mark_input("a", "u")
    d.mark_output("c", "y")
    return compile_diagram(d)


class TestSeededRace:
    def test_deleting_a_precedence_edge_is_reported(self):
        model = small_pipeline_model()
        htg = extract_htg(model, ExtractionOptions(granularity="block"))
        victim = next(
            e
            for e in htg.edges
            if not htg.tasks[e.src].is_synthetic
            and not htg.tasks[e.dst].is_synthetic
            and e.variables
        )
        mapping = {t.task_id: 0 for t in htg.leaf_tasks()}
        mapping[victim.dst] = 1

        # sanity: the intact graph proves this cross-core mapping race-free
        clean = check_races(htg, mapping, default_core_order(htg, mapping), model.entry)
        assert clean.ok

        mutated = HierarchicalTaskGraph(
            htg.name,
            dict(htg.tasks),
            [e for e in htg.edges if e is not victim],
        )
        report = check_races(
            mutated, mapping, default_core_order(mutated, mapping), model.entry
        )
        assert not report.ok
        assert all(f.code.startswith("race.") for f in report.findings)
        subjects = {f.subject for f in report.findings}
        assert f"{victim.src}<->{victim.dst}" in subjects


# ---------------------------------------------------------------------- #
# shipped use cases are race-free end to end
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module", params=USECASES)
def usecase_result(request):
    build, _inputs = ALL_USECASES[request.param]
    return run_pipeline(build(), generic_predictable_multicore(), ToolchainConfig())


class TestUsecasesAreClean:
    def test_schedule_is_race_free(self, usecase_result):
        report = usecase_result.schedule.race_findings(
            usecase_result.htg, usecase_result.model.entry
        )
        assert report.ok
        assert report.checked["pairs_checked"] > 0

    def test_pipeline_gate_ran(self, usecase_result):
        assert usecase_result.stage("parallel").info["race_pairs_checked"] > 0


# ---------------------------------------------------------------------- #
# gates: pipeline config knob and codegen self-check
# ---------------------------------------------------------------------- #
class TestGates:
    def test_race_check_knob_is_validated(self):
        with pytest.raises(ValueError):
            ToolchainConfig(race_check="yes")
        assert ToolchainConfig().race_check is True
        assert ToolchainConfig(race_check=False).race_check is False

    def test_codegen_refuses_racy_program(self):
        func, htg = two_tasks({"buf"}, (), (), {"buf"})
        program = ParallelProgram(
            name="h_parallel",
            core_programs={
                0: CoreProgram(0, ["t1"]),
                1: CoreProgram(1, ["t2"]),
            },
            buffers=[],
            memory_map={},
            schedule=Schedule("h", dict([("t1", 0), ("t2", 1)]), {0: ["t1"], 1: ["t2"]}),
            platform_name="p",
        )
        with pytest.raises(CodegenRaceError):
            parallel_program_to_c(program, htg, func)
        # the gate can be bypassed explicitly, and is off without the function
        assert "core0_main" in parallel_program_to_c(
            program, htg, func, check_races=False
        )
        assert "core0_main" in parallel_program_to_c(program, htg)

    def test_codegen_accepts_ordered_program(self, usecase_result):
        text = parallel_program_to_c(
            usecase_result.parallel_program,
            usecase_result.htg,
            usecase_result.model.entry,
        )
        assert "core0_main" in text
