"""Observability layer: tracer, metrics, wiring, and the no-change contract.

The load-bearing properties:

* disabled observability is invisible: the null span is a shared
  singleton, nothing is buffered, and traced vs untraced pipeline runs
  produce bit-identical bounds;
* the tracer exports a valid Chrome/Perfetto document and the validator
  catches the malformations the CI smoke job guards against;
* metric snapshots merge and delta correctly (the sweep-worker
  composition rule);
* the pipeline, fixed point, certifiers and sweep runner actually emit
  the telemetry the contract in :mod:`repro.obs` names.
"""

import json

import pytest

from repro import obs
from repro.adl.platforms import generic_predictable_multicore
from repro.core.config import ToolchainConfig
from repro.core.pipeline import Pipeline, _config_digest, run_pipeline
from repro.core.sweep import sweep
from repro.obs.metrics import MetricsRegistry, merge_snapshots, snapshot_delta
from repro.obs.tracer import (
    Tracer,
    validate_trace_events,
    validate_trace_file,
)
from repro.usecases import build_egpws_diagram
from repro.usecases.workloads import random_pipeline_diagram
from repro.wcet import HardwareCostModel, annotate_htg_wcets, system_level_wcet
from repro.wcet.cache import WcetAnalysisCache
from repro.htg import extract_htg
from repro.htg.extraction import ExtractionOptions
from repro.scheduling.schedule import default_core_order
from repro.frontend import compile_diagram


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with disabled, empty telemetry state."""
    obs.reset()
    yield
    obs.reset()


def _small_diagram():
    return random_pipeline_diagram(stages=3, width=2, vector_size=8, seed=3)


# ---------------------------------------------------------------------- #
# metrics registry
# ---------------------------------------------------------------------- #
def test_metrics_instruments():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.5)
    registry.histogram("h").observe(1.0)
    registry.histogram("h").observe(3.0)
    snap = registry.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"] == 2.5
    assert snap["histograms"]["h"]["count"] == 2
    assert snap["histograms"]["h"]["total"] == 4.0
    assert snap["histograms"]["h"]["min"] == 1.0
    assert snap["histograms"]["h"]["max"] == 3.0
    assert registry.histogram("h").mean == 2.0
    assert not registry.is_empty()
    registry.reset()
    assert registry.is_empty()


def test_metrics_merge_and_delta():
    a = MetricsRegistry()
    a.counter("c").inc(2)
    a.histogram("h").observe(1.0)
    b = MetricsRegistry()
    b.counter("c").inc(3)
    b.gauge("g").set(7.0)
    b.histogram("h").observe(5.0)
    merged = merge_snapshots([a.snapshot(), b.snapshot(), {}])
    assert merged["counters"]["c"] == 5
    assert merged["gauges"]["g"] == 7.0
    assert merged["histograms"]["h"]["count"] == 2
    assert merged["histograms"]["h"]["min"] == 1.0
    assert merged["histograms"]["h"]["max"] == 5.0

    before = a.snapshot()
    a.counter("c").inc(10)
    a.counter("untouched").inc(0)
    a.histogram("h").observe(2.0)
    delta = snapshot_delta(before, a.snapshot())
    assert delta["counters"]["c"] == 10
    # zero-delta instruments are dropped from the carved-out snapshot
    assert "untouched" not in delta["counters"]
    assert delta["histograms"]["h"]["count"] == 1


# ---------------------------------------------------------------------- #
# tracer + validator
# ---------------------------------------------------------------------- #
def test_tracer_export_and_validate(tmp_path):
    tracer = Tracer()
    import time

    t0 = time.perf_counter()
    tracer.record_complete("outer", t0, 0.010, {"k": 1})
    tracer.record_complete("inner", t0 + 0.001, 0.002)
    tracer.record_counter("curve", {"delta": 4.0})
    tracer.record_instant("mark")
    assert len(tracer) == 4
    assert validate_trace_events(tracer.events()) == []

    out = tracer.export_chrome(tmp_path / "trace.json")
    assert validate_trace_file(out) == []
    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ms"
    names = [e["name"] for e in doc["traceEvents"]]
    # ts-sorted: the enclosing span precedes the nested one
    assert names.index("outer") < names.index("inner")

    jsonl = tracer.export_jsonl(tmp_path / "trace.jsonl")
    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert len(lines) == 4

    tracer.clear()
    assert len(tracer) == 0


def test_tracer_event_cap():
    tracer = Tracer(max_events=2)
    for i in range(5):
        tracer.record_instant(f"e{i}")
    assert len(tracer) == 2
    assert tracer.dropped == 3


def test_validator_catches_malformed_traces():
    base = {"cat": "t", "pid": 1, "tid": 1}
    assert validate_trace_events([{**base, "name": "x", "ph": "?", "ts": 0.0}])
    assert validate_trace_events(
        [{**base, "name": "x", "ph": "X", "ts": 0.0, "dur": -1.0}]
    )
    assert validate_trace_events(
        [
            {**base, "name": "a", "ph": "i", "s": "t", "ts": 5.0},
            {**base, "name": "b", "ph": "i", "s": "t", "ts": 1.0},
        ]
    ), "non-monotonic ts must be a finding"
    assert validate_trace_events([{**base, "name": "a", "ph": "B", "ts": 0.0}])
    # partial overlap: "b" starts inside "a" but ends after it
    assert validate_trace_events(
        [
            {**base, "name": "a", "ph": "X", "ts": 0.0, "dur": 10.0},
            {**base, "name": "b", "ph": "X", "ts": 5.0, "dur": 10.0},
        ]
    )
    # well-formed: matched B/E and properly nested X spans
    assert (
        validate_trace_events(
            [
                {**base, "name": "a", "ph": "X", "ts": 0.0, "dur": 10.0},
                {**base, "name": "b", "ph": "X", "ts": 2.0, "dur": 3.0},
                {**base, "name": "c", "ph": "B", "ts": 20.0},
                {**base, "name": "c", "ph": "E", "ts": 21.0},
            ]
        )
        == []
    )


def test_validate_trace_file_error_forms(tmp_path):
    missing = tmp_path / "nope.json"
    assert validate_trace_file(missing)
    bad = tmp_path / "bad.json"
    bad.write_text('{"no_events": true}')
    assert validate_trace_file(bad) == ["trace object has no traceEvents array"]
    bare = tmp_path / "bare.json"
    bare.write_text("[]")
    assert validate_trace_file(bare) == []


# ---------------------------------------------------------------------- #
# ambient switch + spans
# ---------------------------------------------------------------------- #
def test_disabled_span_is_shared_noop_singleton():
    assert not obs.obs_enabled()
    s1 = obs.span("a", k=1)
    s2 = obs.span("b")
    assert s1 is s2  # the shared singleton: no allocation per call site
    with s1 as entered:
        entered.set(anything=1)
    assert len(obs.tracer()) == 0
    obs.trace_complete("x", 0.0, 1.0)
    obs.trace_counter("y", {"v": 1.0})
    assert len(obs.tracer()) == 0


def test_enabled_span_records_event_with_attrs():
    obs.set_enabled(True)
    with obs.span("work", stage="x") as span:
        span.set(items=3)
    (event,) = obs.tracer().events()
    assert event["name"] == "work"
    assert event["ph"] == "X"
    assert event["args"] == {"stage": "x", "items": 3}


def test_enabled_span_tags_exceptions():
    obs.set_enabled(True)
    with pytest.raises(ValueError):
        with obs.span("boom"):
            raise ValueError("no")
    (event,) = obs.tracer().events()
    assert event["args"]["error"] == "ValueError"


def test_observed_restores_and_never_disables():
    assert not obs.obs_enabled()
    with obs.observed():
        assert obs.obs_enabled()
    assert not obs.obs_enabled()
    obs.set_enabled(True)
    with obs.observed(False):
        assert obs.obs_enabled(), "observed(False) must not disable"
    assert obs.obs_enabled()


# ---------------------------------------------------------------------- #
# config knob
# ---------------------------------------------------------------------- #
def test_trace_knob_validated_and_cache_key_neutral():
    with pytest.raises(ValueError):
        ToolchainConfig(trace="yes")
    plain = ToolchainConfig()
    traced = ToolchainConfig(trace=True)
    # observability must not split content-addressed cache keys
    assert _config_digest(plain) == _config_digest(traced)


# ---------------------------------------------------------------------- #
# pipeline wiring
# ---------------------------------------------------------------------- #
def test_traced_pipeline_bit_identical_and_telemetry():
    # fresh per-run caches: the trace knob is excluded from cache keys, so
    # a shared result tier would legitimately replay the untraced fixed
    # point into the traced run -- here we want both to compute
    platform = generic_predictable_multicore(cores=2)
    untraced = Pipeline(
        platform, ToolchainConfig(loop_chunks=2), WcetAnalysisCache()
    ).run(_small_diagram())
    assert untraced.telemetry() == {"enabled": False}

    traced = Pipeline(
        platform, ToolchainConfig(loop_chunks=2, trace=True), WcetAnalysisCache()
    ).run(_small_diagram())
    assert not obs.obs_enabled(), "the trace knob must not leak past the run"
    assert traced.schedule.wcet_bound == untraced.schedule.wcet_bound
    assert traced.schedule.mapping == untraced.schedule.mapping

    telemetry = traced.telemetry()
    assert telemetry["enabled"]
    counters = telemetry["metrics"]["counters"]
    assert counters["fixed_point.runs"] >= 1
    assert counters["fixed_point.iterations"] >= 1
    assert counters["scheduler.list_runs"] >= 1
    # every pipeline stage shows up as a span
    names = {event["name"] for event in obs.tracer().events()}
    for stage in ("frontend", "transforms", "htg", "schedule", "parallel", "wcet"):
        assert f"stage.{stage}" in names
    assert "pipeline.run" in names
    assert "fixed_point" in names
    assert validate_trace_events(obs.tracer().events()) == []


# ---------------------------------------------------------------------- #
# fixed-point convergence evidence
# ---------------------------------------------------------------------- #
def _analysed_case(cores=2):
    model = compile_diagram(build_egpws_diagram(lookahead=8))
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=2))
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    mapping = {
        t.task_id: i % cores
        for i, t in enumerate(htg.topological_tasks())
        if not t.is_synthetic
    }
    return htg, model.entry, platform, mapping, default_core_order(htg, mapping)


def test_final_delta_and_iteration_deltas():
    htg, function, platform, mapping, order = _analysed_case()

    cold = system_level_wcet(
        htg, function, platform, mapping, order, result_cache=False
    )
    assert cold.converged
    assert cold.final_delta == 0.0
    assert cold.iteration_deltas is None, "deltas are an observed-run diagnostic"

    obs.set_enabled(True)
    observed = system_level_wcet(
        htg, function, platform, mapping, order, result_cache=False
    )
    assert observed.makespan == cold.makespan
    assert observed.iteration_deltas is not None
    assert len(observed.iteration_deltas) == observed.iterations
    assert observed.iteration_deltas[-1] == 0.0

    capped = system_level_wcet(
        htg, function, platform, mapping, order,
        max_iterations=1, result_cache=False,
    )
    assert not capped.converged
    # at the iteration cap the final delta is real evidence, not a default
    assert capped.final_delta == observed.iteration_deltas[0]


# ---------------------------------------------------------------------- #
# sweep telemetry
# ---------------------------------------------------------------------- #
def _sweep_grid():
    from functools import partial

    return dict(
        diagrams=[partial(random_pipeline_diagram, stages=3, width=2, vector_size=8, seed=3)],
        platforms=[partial(generic_predictable_multicore, cores=2)],
        configs=[
            ToolchainConfig(loop_chunks=2),
            ToolchainConfig(loop_chunks=2, scheduler="sequential"),
        ],
    )


def test_sweep_outcome_telemetry_sequential_and_parallel():
    obs.set_enabled(True)
    sequential = sweep(**_sweep_grid(), max_workers=1, cache=WcetAnalysisCache())
    assert sequential.ok
    for outcome in sequential:
        assert outcome.telemetry is not None
        assert outcome.telemetry["enabled"]
        assert "telemetry" in outcome.as_dict()
    merged = sequential.merged_telemetry()
    assert merged["enabled"]
    # each case contributes its schedule runs; the fixed point may replay
    # from the process-wide result tier, so count both evidence kinds
    counters = merged["metrics"]["counters"]
    assert (
        counters.get("fixed_point.runs", 0) + counters.get("system_cache.hits", 0)
        >= 2
    )

    before = obs.metrics_snapshot()
    # worker processes start with fresh caches of their own, so no cache=
    parallel = sweep(**_sweep_grid(), max_workers=2)
    assert parallel.ok
    merged_parallel = parallel.merged_telemetry()
    assert merged_parallel["enabled"]
    # worker snapshots shipped through SweepOutcome.telemetry were merged
    # into the parent's process registry on the parallel path
    parent_delta = snapshot_delta(before, obs.metrics_snapshot())
    for name, value in merged_parallel["metrics"]["counters"].items():
        assert parent_delta["counters"].get(name, 0) >= value, name
    bounds = [o.system_wcet for o in sequential]
    assert bounds == [o.system_wcet for o in parallel]


def test_sweep_without_obs_has_no_telemetry():
    result = sweep(**_sweep_grid(), max_workers=1)
    assert result.ok
    assert all(outcome.telemetry is None for outcome in result)
    assert result.merged_telemetry() == {"enabled": False}


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
def test_cli_trace_command(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "trace.json"
    rc = main(["trace", "egpws", "--out", str(out), "--metrics-json"])
    assert rc == 0
    assert validate_trace_file(out) == []
    payload = json.loads(capsys.readouterr().out)
    assert payload["events"] > 0
    assert payload["validation_findings"] == []
    counters = payload["metrics"]["counters"]
    assert counters["fixed_point.runs"] >= 1
    assert counters["ipet.solves"] >= 1
    assert counters["mhp.pairs_pruned"] >= 0
    assert any(key.startswith("certify.") for key in counters)


def test_cli_trace_unknown_target(capsys):
    from repro.cli import main

    assert main(["trace", "not-a-usecase"]) == 2
