"""Tests for the task memory-footprint analysis and interval division.

The negative cases matter most: a footprint the analysis *cannot* prove
disjoint must never be reported disjoint (that would silently weaken both
the race checker and the static-MHP pruning), so overlapping stencils,
symbolic strides and truncation corner cases all appear here as
must-stay-conservative fixtures.
"""

import math

from repro.analysis.footprints import (
    FootprintStore,
    footprints_address_disjoint,
    footprints_conflict_free,
    iteration_value_range,
    task_footprint,
    task_footprints,
)
from repro.analysis.value_range import TOP, ValueRange, eval_range
from repro.htg.task import Task, TaskKind
from repro.ir import FunctionBuilder
from repro.ir.expressions import ArrayRef, BinOp, Const, Var
from repro.ir.statements import Assign, Block, For
from repro.ir.types import INT
from repro.wcet.cache import WcetAnalysisCache

INF = float("inf")


# ---------------------------------------------------------------------- #
# interval division (value_range.eval_range)
# ---------------------------------------------------------------------- #
def div(a: ValueRange, b: ValueRange) -> ValueRange:
    env = {"a": a, "b": b}
    return eval_range(BinOp("/", Var("a"), Var("b")), env)


class TestIntervalDivision:
    def test_positive_divisor(self):
        assert div(ValueRange(4, 8), ValueRange(2, 4)) == ValueRange(1.0, 4.0)

    def test_negative_divisor(self):
        assert div(ValueRange(4, 8), ValueRange(-4, -2)) == ValueRange(-4.0, -1.0)

    def test_sign_crossing_dividend(self):
        assert div(ValueRange(-6, 6), ValueRange(2, 3)) == ValueRange(-3.0, 3.0)

    def test_divisor_containing_zero_is_top(self):
        assert div(ValueRange(4, 8), ValueRange(-1, 1)).is_top
        assert div(ValueRange(4, 8), ValueRange(0, 2)).is_top
        assert div(ValueRange(4, 8), ValueRange(-2, 0)).is_top

    def test_constants_fold_exactly(self):
        assert div(ValueRange(6, 6), ValueRange(3, 3)) == ValueRange(2.0, 2.0)

    def test_unbounded_dividend_stays_sound(self):
        result = div(TOP, ValueRange(2, 4))
        assert result.lo == -INF and result.hi == INF

    def test_unbounded_divisor_of_one_sign(self):
        # [1, inf) divisor: quotients shrink toward 0 but keep the sign
        result = div(ValueRange(4, 8), ValueRange(1, INF))
        assert result.lo == 0.0
        assert result.hi == 8.0

    def test_soundness_on_random_samples(self):
        import random

        rng = random.Random(7)
        for _ in range(200):
            a = sorted(rng.uniform(-10, 10) for _ in range(2))
            b = sorted(rng.uniform(-10, 10) for _ in range(2))
            if b[0] <= 0 <= b[1]:
                continue
            out = div(ValueRange(a[0], a[1]), ValueRange(b[0], b[1]))
            for _ in range(16):
                x = rng.uniform(a[0], a[1])
                y = rng.uniform(b[0], b[1])
                assert out.lo - 1e-9 <= x / y <= out.hi + 1e-9


# ---------------------------------------------------------------------- #
# footprint extraction
# ---------------------------------------------------------------------- #
def shared_buf_function(size=8):
    fb = FunctionBuilder("f")
    buf = fb.shared_array("buf", (size,))
    fb.assign(fb.at(buf, 0), 1.0)
    return fb.build()


def chunk_task(tid, lo, hi, writes=("buf",), index_expr=None):
    i = Var("i", INT)
    target_index = index_expr if index_expr is not None else i
    body = Block([Assign(ArrayRef("buf", (target_index,)), Const(1.0))])
    stmts = Block([For(index=i, lower=Const(lo), upper=Const(hi), body=body)])
    return Task(tid, TaskKind.LOOP_CHUNK, stmts, writes=set(writes), parent="loop")


class TestTaskFootprints:
    def test_chunk_slices_are_precise(self):
        func = shared_buf_function()
        fp = task_footprint(func, chunk_task("t", 0, 4))
        assert fp.array_writes["buf"] == ValueRange(0.0, 3.0)
        assert not fp.array_reads

    def test_disjoint_chunks_prove_conflict_free(self):
        func = shared_buf_function()
        a = task_footprint(func, chunk_task("a", 0, 4))
        b = task_footprint(func, chunk_task("b", 4, 8))
        assert footprints_conflict_free(a, b)
        assert footprints_address_disjoint(a, b)

    def test_stencil_read_overlap_is_not_conflict_free(self):
        func = shared_buf_function()
        a = task_footprint(func, chunk_task("a", 0, 4))
        # b reads buf[i-1] for i in [4, 8): first read hits buf[3], which a writes
        i = Var("i", INT)
        stencil = Block(
            [For(index=i, lower=Const(4), upper=Const(8),
                 body=Block([Assign(Var("x"),
                                    ArrayRef("buf", (BinOp("-", i, Const(1)),)))]))]
        )
        b_task = Task("b", TaskKind.LOOP_CHUNK, stencil, reads={"buf"}, parent="loop")
        b = task_footprint(func, b_task)
        assert b.array_reads["buf"] == ValueRange(3.0, 6.0)
        assert not footprints_conflict_free(a, b)
        assert not footprints_address_disjoint(a, b)

    def test_read_read_overlap_is_conflict_free_but_not_address_disjoint(self):
        func = shared_buf_function()
        i = Var("i", INT)

        def reader(tid):
            stmts = Block(
                [For(index=i, lower=Const(0), upper=Const(4),
                     body=Block([Assign(Var("x"), ArrayRef("buf", (i,)))]))]
            )
            return Task(tid, TaskKind.LOOP_CHUNK, stmts, reads={"buf"}, parent="loop")

        a = task_footprint(func, reader("a"))
        b = task_footprint(func, reader("b"))
        # no write -> no data race ...
        assert footprints_conflict_free(a, b)
        # ... but the accesses still collide on the interconnect
        assert not footprints_address_disjoint(a, b)

    def test_symbolic_index_widens_to_whole_array(self):
        func = shared_buf_function()
        stmts = Block([Assign(ArrayRef("buf", (Var("off"),)), Const(1.0))])
        task = Task("t", TaskKind.LOOP_CHUNK, stmts, writes={"buf"}, parent="loop")
        fp = task_footprint(func, task)
        assert fp.array_writes["buf"].is_top

    def test_truncation_maps_fractional_indices_to_element_zero(self):
        # -1/2 and 1/4 both truncate to element 0: the footprints must
        # overlap even though the real-valued intervals are disjoint
        func = shared_buf_function()
        neg = Block(
            [Assign(ArrayRef("buf", (BinOp("/", Const(-1), Const(2)),)), Const(1.0))]
        )
        pos = Block(
            [Assign(ArrayRef("buf", (BinOp("/", Const(1), Const(4)),)), Const(1.0))]
        )
        a = task_footprint(func, Task("a", TaskKind.BLOCK, neg, writes={"buf"}))
        b = task_footprint(func, Task("b", TaskKind.BLOCK, pos, writes={"buf"}))
        assert a.array_writes["buf"] == ValueRange(0.0, 0.0)
        assert b.array_writes["buf"] == ValueRange(0.0, 0.0)
        assert not footprints_conflict_free(a, b)

    def test_declared_but_unseen_names_become_whole_footprints(self):
        func = shared_buf_function()
        task = Task("t", TaskKind.BLOCK, Block(), writes={"buf"}, reads={"buf"})
        fp = task_footprint(func, task)
        assert fp.array_writes["buf"].is_top
        assert fp.array_reads["buf"].is_top

    def test_zero_trip_loop_contributes_nothing(self):
        func = shared_buf_function()
        task = chunk_task("t", 4, 4, writes=())
        fp = task_footprint(func, task)
        # no declared writes either, so the body walk alone decides
        assert "buf" not in fp.array_writes

    def test_reassigned_index_is_killed(self):
        # the loop body overwrites i before indexing: the loop range must
        # not be used for the access
        func = shared_buf_function()
        i = Var("i", INT)
        body = Block(
            [
                Assign(i, Var("unknown")),
                Assign(ArrayRef("buf", (i,)), Const(1.0)),
            ]
        )
        stmts = Block([For(index=i, lower=Const(0), upper=Const(4), body=body)])
        fp = task_footprint(
            func, Task("t", TaskKind.LOOP_CHUNK, stmts, writes={"buf"}, parent="loop")
        )
        assert fp.array_writes["buf"].is_top


class TestIterationValueRange:
    def test_constant_bounds(self):
        loop = For(index=Var("i", INT), lower=Const(0), upper=Const(8), body=Block())
        assert iteration_value_range(loop, {}) == ValueRange(0.0, 7.0)

    def test_negative_step(self):
        loop = For(
            index=Var("i", INT), lower=Const(7), upper=Const(0), body=Block(), step=-1
        )
        assert iteration_value_range(loop, {}) == ValueRange(1.0, 7.0)

    def test_provably_empty(self):
        loop = For(index=Var("i", INT), lower=Const(5), upper=Const(5), body=Block())
        assert iteration_value_range(loop, {}) is None

    def test_fractional_bounds_truncate_like_the_interpreter(self):
        # interpreter runs int(-0.5)=0 .. int(3.5)=3 exclusive -> i in [0, 2]
        lower = BinOp("/", Const(-1), Const(2))
        upper = BinOp("/", Const(7), Const(2))
        loop = For(index=Var("i", INT), lower=lower, upper=upper, body=Block())
        assert iteration_value_range(loop, {}) == ValueRange(0.0, 2.0)


# ---------------------------------------------------------------------- #
# footprint store
# ---------------------------------------------------------------------- #
class TestFootprintStore:
    def test_cache_hits_on_identical_regions(self):
        func = shared_buf_function()
        task = chunk_task("t", 0, 4)
        store = FootprintStore()
        first = store.footprint(func, task)
        second = store.footprint(func, task)
        assert first is second
        assert store.hits == 1 and store.misses == 1

    def test_declared_sets_key_the_entry(self):
        # same rendered statements, different declared write sets: the
        # whole-footprint merge differs, so the entries must not collide
        func = shared_buf_function()
        bare = Task("a", TaskKind.BLOCK, Block())
        declared = Task("b", TaskKind.BLOCK, Block(), writes={"buf"})
        store = FootprintStore()
        fp_bare = store.footprint(func, bare)
        fp_declared = store.footprint(func, declared)
        assert "buf" not in fp_bare.array_writes
        assert fp_declared.array_writes["buf"].is_top

    def test_shares_fingerprints_with_wcet_cache(self):
        func = shared_buf_function()
        task = chunk_task("t", 0, 4)
        store = FootprintStore(wcet_cache=WcetAnalysisCache())
        assert store.footprint(func, task).array_writes["buf"] == ValueRange(0.0, 3.0)
        assert store.footprint(func, task) is store.footprint(func, task)

    def test_task_footprints_convenience(self):
        func = shared_buf_function()
        tasks = [chunk_task("a", 0, 4), chunk_task("b", 4, 8)]
        fps = task_footprints(func, tasks)
        assert set(fps) == {"a", "b"}
        assert fps["a"].task_id == "a"

    def test_lru_bounds_memory(self):
        func = shared_buf_function()
        store = FootprintStore(max_entries=2)
        for k in range(4):
            store.footprint(func, chunk_task(f"t{k}", k, k + 1))
        assert store.misses == 4
        assert len(store._entries) <= 2


def test_trunc_is_infinity_preserving():
    from repro.analysis.footprints import _trunc

    assert _trunc(INF) == INF
    assert _trunc(-INF) == -INF
    assert _trunc(-0.5) == 0.0
    assert _trunc(2.9) == 2.0
    assert _trunc(-2.9) == -2.0
    assert math.trunc(_trunc(7.0)) == 7
