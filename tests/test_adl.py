"""Tests for the ADL: processors, memories, interconnects, NoC, platforms."""

import pytest
from hypothesis import given, strategies as st

from repro.adl import (
    Core,
    FullCrossbar,
    MeshNoC,
    Platform,
    ProcessorModel,
    RoundRobinBus,
    TDMBus,
    generic_predictable_multicore,
    kit_leon3_inoc,
    recore_xentium_like,
    xy_route,
)
from repro.adl.memory import (
    MemoryKind,
    MemoryRegion,
    external_dram,
    scratchpad,
    shared_sram,
)
from repro.adl.processor import leon3_processor, xentium_processor


class TestProcessor:
    def test_known_and_unknown_ops(self):
        proc = ProcessorModel("p")
        assert proc.cycles_for_op("+") == 1
        assert proc.cycles_for_op("unknown_op") == max(proc.op_cycles.values())

    def test_scaled_model(self):
        proc = ProcessorModel("p")
        fast = proc.scaled(0.5)
        assert fast.cycles_for_op("/") <= proc.cycles_for_op("/")
        assert fast.cycles_for_op("+") >= 1
        with pytest.raises(ValueError):
            proc.scaled(0.0)

    def test_predictability_flags(self):
        assert ProcessorModel("p").is_predictable
        assert not ProcessorModel("p", dynamic_branch_prediction=True).is_predictable

    def test_cycles_to_seconds(self):
        proc = ProcessorModel("p", clock_mhz=100.0)
        assert proc.cycles_to_seconds(100e6) == pytest.approx(1.0)

    def test_presets_differ(self):
        assert xentium_processor().cycles_for_op("*") < leon3_processor().cycles_for_op("*")


class TestMemory:
    def test_scratchpad_is_private_and_predictable(self):
        spm = scratchpad("spm0", 64)
        assert spm.private and spm.is_predictable
        assert spm.size_bytes == 64 * 1024

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion("m", MemoryKind.SCRATCHPAD, 0, 1, 1)
        with pytest.raises(ValueError):
            MemoryRegion("m", MemoryKind.SCRATCHPAD, 4, -1, 1)

    def test_cached_dram_unpredictable_unless_locked(self):
        cached = MemoryRegion("m", MemoryKind.CACHED_DRAM, 1024, 5, 6)
        assert not cached.is_predictable
        locked = MemoryRegion("m", MemoryKind.CACHED_DRAM, 1024, 5, 6, cache_locked=True)
        assert locked.is_predictable

    def test_dram_slower_than_sram(self):
        assert external_dram().read_latency > shared_sram().read_latency


class TestInterconnects:
    def test_tdm_delay_independent_of_contenders(self):
        bus = TDMBus(num_slots=4)
        assert bus.worst_case_access_delay(0) == bus.worst_case_access_delay(3)

    def test_rr_delay_grows_with_contenders(self):
        bus = RoundRobinBus()
        delays = [bus.worst_case_access_delay(n) for n in range(5)]
        assert delays == sorted(delays)
        assert delays[4] > delays[0]

    def test_rr_tighter_than_tdm_at_low_contention(self):
        rr = RoundRobinBus()
        tdm = TDMBus(num_slots=8)
        assert rr.worst_case_access_delay(1) < tdm.worst_case_access_delay(1)

    def test_transfer_scales_with_bytes(self):
        bus = RoundRobinBus()
        assert bus.worst_case_transfer_delay(256, 2) > bus.worst_case_transfer_delay(64, 2)

    def test_crossbar_zero_contention_is_cheap(self):
        xbar = FullCrossbar()
        assert xbar.worst_case_access_delay(0) == 0

    def test_negative_contenders_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinBus().worst_case_access_delay(-1)

    @given(st.integers(0, 16), st.integers(1, 4096))
    def test_rr_transfer_monotone_in_contenders(self, contenders, nbytes):
        bus = RoundRobinBus()
        assert bus.worst_case_transfer_delay(nbytes, contenders + 1) >= bus.worst_case_transfer_delay(
            nbytes, contenders
        )


class TestNoC:
    def test_xy_route_length_is_manhattan(self):
        links = xy_route((0, 0), (2, 3))
        assert len(links) == 5

    def test_route_same_tile_empty(self):
        assert xy_route((1, 1), (1, 1)) == []

    def test_tile_coords_roundtrip(self):
        noc = MeshNoC(width=3, height=2)
        assert noc.tile_coords(0) == (0, 0)
        assert noc.tile_coords(5) == (2, 1)
        with pytest.raises(ValueError):
            noc.tile_coords(6)

    def test_latency_grows_with_distance_and_contention(self):
        noc = MeshNoC(width=4, height=4)
        near = noc.worst_case_packet_latency(64, 0, 1, contenders=0)
        far = noc.worst_case_packet_latency(64, 0, 15, contenders=0)
        assert far > near
        quiet = noc.worst_case_packet_latency(64, 0, 15, contenders=0)
        busy = noc.worst_case_packet_latency(64, 0, 15, contenders=6)
        assert busy > quiet

    def test_guaranteed_bandwidth_fraction(self):
        noc = MeshNoC()
        assert noc.guaranteed_bandwidth(2, 8) == pytest.approx(0.25)
        assert noc.guaranteed_bandwidth(9, 8) == 1.0
        with pytest.raises(ValueError):
            noc.guaranteed_bandwidth(1, 0)

    @given(st.integers(1, 4096), st.integers(0, 8))
    def test_packet_latency_positive_and_monotone_in_bytes(self, nbytes, contenders):
        noc = MeshNoC(width=3, height=3)
        small = noc.worst_case_packet_latency(nbytes, 0, 8, contenders)
        bigger = noc.worst_case_packet_latency(nbytes + 64, 0, 8, contenders)
        assert small > 0
        assert bigger >= small


class TestPlatforms:
    def test_generic_platform_predictable(self):
        platform = generic_predictable_multicore(cores=4)
        report = platform.check_predictability()
        assert report.passed, report.violations
        assert platform.num_cores == 4
        assert platform.is_homogeneous()

    def test_recore_platform(self):
        platform = recore_xentium_like(dsp_cores=8, control_cores=1)
        assert platform.num_cores == 9
        assert not platform.is_homogeneous()
        assert platform.check_predictability().passed

    def test_kit_platform_has_noc(self):
        platform = kit_leon3_inoc(mesh_width=2, mesh_height=2, cores_per_tile=2)
        assert platform.num_cores == 8
        assert platform.noc is not None
        assert platform.check_predictability().passed
        # cores on different tiles communicate over the NoC
        lat_same_tile = platform.communication_latency(256, 0, 1)
        lat_cross_tile = platform.communication_latency(256, 0, 7)
        assert lat_cross_tile > lat_same_tile

    def test_self_communication_is_free(self):
        platform = generic_predictable_multicore(cores=2)
        assert platform.communication_latency(128, 0, 0) == 0.0

    def test_shared_latency_grows_with_contenders(self):
        platform = generic_predictable_multicore(cores=4)
        assert platform.shared_read_latency(3) > platform.shared_read_latency(0)

    def test_unpredictable_processor_fails_audit(self):
        proc = ProcessorModel("speculative", dynamic_branch_prediction=True, prefetcher=True)
        cores = [Core(0, proc, scratchpad("spm0"))]
        platform = Platform("bad", cores, shared_sram(), RoundRobinBus())
        report = platform.check_predictability()
        assert not report.passed
        assert any("speculative" in v for v in report.violations)

    def test_duplicate_core_ids_rejected(self):
        proc = ProcessorModel("p")
        cores = [Core(0, proc, scratchpad("a")), Core(0, proc, scratchpad("b"))]
        with pytest.raises(ValueError):
            Platform("dup", cores, shared_sram(), RoundRobinBus())

    def test_core_requires_private_scratchpad(self):
        with pytest.raises(ValueError):
            Core(0, ProcessorModel("p"), shared_sram())

    def test_platform_requires_cores_and_shared_memory(self):
        with pytest.raises(ValueError):
            Platform("empty", [], shared_sram(), RoundRobinBus())
        with pytest.raises(ValueError):
            Platform(
                "bad",
                [Core(0, ProcessorModel("p"), scratchpad("s"))],
                scratchpad("private_shared"),
                RoundRobinBus(),
            )

    def test_invalid_preset_arguments(self):
        with pytest.raises(ValueError):
            generic_predictable_multicore(cores=0)
        with pytest.raises(ValueError):
            recore_xentium_like(dsp_cores=0)
        with pytest.raises(ValueError):
            kit_leon3_inoc(cores_per_tile=0)
