"""Tests for the incremental re-analysis engine (PR 8).

The core property: for any seeded edit script,
:meth:`Pipeline.run_incremental` must produce results bit-identical to a
cold :meth:`Pipeline.run` on the edited model -- every reuse is either
proved valid by a content fingerprint or re-validated by an independent
certificate checker.
"""

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.analysis.incremental import (
    IncrementalAnalysisStore,
    diagram_fingerprint,
    diff_summaries,
    mark_reused,
    stage_input_frontiers,
)
from repro.analysis.report import AnalysisReport, Finding
from repro.core.config import ToolchainConfig
from repro.core.pipeline import Pipeline, Stage, default_stages
from repro.scheduling.schedule import default_core_order
from repro.usecases.workloads import (
    delete_block,
    edit_block_param,
    insert_gain_block,
    random_edit_script,
    random_pipeline_diagram,
    tweak_platform_costs,
)
from repro.wcet.cache import WcetAnalysisCache
from repro.wcet.system_level import system_level_wcet, warm_start_hint


def _diagram(seed: int, **kwargs):
    kwargs.setdefault("stages", 3)
    kwargs.setdefault("width", 2)
    kwargs.setdefault("vector_size", 8)
    return random_pipeline_diagram(seed=seed, **kwargs)


def _pipeline(platform=None, config=None, cache=None):
    return Pipeline(
        platform or generic_predictable_multicore(cores=4),
        config or ToolchainConfig(),
        cache or WcetAnalysisCache(),
    )


def _assert_bit_identical(incremental, cold):
    assert incremental.schedule.wcet_bound == cold.schedule.wcet_bound
    assert incremental.schedule.mapping == cold.schedule.mapping
    assert incremental.schedule.order == cold.schedule.order
    assert incremental.sequential_bound == cold.sequential_bound
    inc_res, cold_res = incremental.schedule.result, cold.schedule.result
    assert inc_res.task_effective_wcet == cold_res.task_effective_wcet
    assert inc_res.task_intervals == cold_res.task_intervals


# ---------------------------------------------------------------------- #
# fingerprints and frontiers
# ---------------------------------------------------------------------- #
def test_diagram_fingerprint_is_content_addressed():
    a = _diagram(seed=3)
    b = _diagram(seed=3)
    assert diagram_fingerprint(a) == diagram_fingerprint(b)
    edit_block_param(b, seed=0)
    assert diagram_fingerprint(a) != diagram_fingerprint(b)


def test_stage_frontiers_are_none_when_unfingerprintable():
    frontiers = stage_input_frontiers({"diagram": "d", "config": "c"})
    assert frontiers["frontend"] is not None
    assert frontiers["transforms"] is not None
    assert frontiers["htg"] is None  # function/extraction/platform missing
    assert frontiers["schedule"] is None


def test_artifact_summary_structure():
    pipe = _pipeline()
    result = pipe.run(_diagram(seed=5))
    summary = result.artifact_summary(pipe.wcet_cache)
    assert set(summary["frontiers"]) == {s.name for s in default_stages()}
    assert summary["regions"]
    assert summary["fingerprints"]["function"]
    # memoized: second call returns the same object
    assert result.artifact_summary() is summary
    diff = diff_summaries(summary, summary)
    assert diff.nothing_changed
    assert not diff.dirty_stages


# ---------------------------------------------------------------------- #
# run_incremental: reuse paths
# ---------------------------------------------------------------------- #
def test_nothing_changed_runs_zero_stages():
    pipe = _pipeline()
    base = pipe.run(_diagram(seed=11))
    result = pipe.run_incremental(base, _diagram(seed=11))
    report = result.artifacts["incremental_report"]
    assert report.stages_recomputed == 0
    assert report.stages_reused == len(default_stages())
    assert all(r.seconds == 0.0 for r in result.stage_records)
    assert result.cache_stats["stages_reused"] == len(default_stages())
    _assert_bit_identical(result, base)
    # replayed artifacts are the previous run's objects, not copies
    assert result.htg is base.htg
    assert result.parallel_program is base.parallel_program


def test_single_param_edit_is_incremental_and_bit_identical():
    cache = WcetAnalysisCache()
    pipe = _pipeline(cache=cache)
    base = pipe.run(_diagram(seed=12))
    edited = _diagram(seed=12)
    edited_block = edit_block_param(edited, seed=1)
    result = pipe.run_incremental(base, edited)
    report = result.artifacts["incremental_report"]
    assert report.fallback_reason is None
    assert report.stages["htg"] == "incremental"
    assert report.regions_recomputed == 1
    assert report.regions_reused == len(base.model.block_regions) - 1
    assert list(report.diff.changed_regions) == [edited_block]
    assert report.stages["parallel"] == "incremental"
    assert report.race_pairs_reused > 0
    cold = _pipeline().run(edited)
    _assert_bit_identical(result, cold)


def test_reused_race_findings_carry_provenance():
    # a schedule with races: everything on separate cores, no sync -> the
    # race checker reports findings; an incremental re-check of an
    # unchanged model must replay them with provenance "reused"
    from repro.analysis.races import incremental_race_check
    from repro.frontend import compile_diagram
    from repro.htg import extract_htg

    model = compile_diagram(_diagram(seed=13))
    htg = extract_htg(model)
    leaf_ids = [t.task_id for t in htg.leaf_tasks()]
    mapping = {tid: i % 4 for i, tid in enumerate(leaf_ids)}
    order = default_core_order(htg, mapping)
    first, state = incremental_race_check(htg, mapping, order, model.entry)
    assert all(f.provenance == "computed" for f in first.findings)
    second, _ = incremental_race_check(
        htg, mapping, order, model.entry, prev_state=state, changed_tasks=set()
    )
    assert second.count("error") == first.count("error")
    assert second.checked.get("pairs_reused", 0) > 0
    assert all(f.provenance == "reused" for f in second.findings)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_random_edit_scripts_match_cold(seed):
    pipe = _pipeline()
    base = pipe.run(_diagram(seed=seed))
    edited = _diagram(seed=seed)
    random_edit_script(edited, num_edits=2, seed=seed + 1000)
    result = pipe.run_incremental(base, edited)
    assert result.artifacts["incremental_report"].fallback_reason is None
    _assert_bit_identical(result, _pipeline().run(edited))


@pytest.mark.parametrize("edit", [insert_gain_block, delete_block])
def test_structural_edits_match_cold(edit):
    pipe = _pipeline()
    base = pipe.run(_diagram(seed=21))
    edited = _diagram(seed=21)
    edit(edited, seed=2)
    result = pipe.run_incremental(base, edited)
    _assert_bit_identical(result, _pipeline().run(edited))


def test_platform_cost_tweak_matches_cold():
    base_platform = generic_predictable_multicore(cores=4)
    pipe = _pipeline(platform=base_platform)
    base = pipe.run(_diagram(seed=22))
    tweaked = tweak_platform_costs(base_platform, seed=5)
    warm_pipe = Pipeline(tweaked, ToolchainConfig(), pipe.wcet_cache)
    result = warm_pipe.run_incremental(base, _diagram(seed=22))
    cold = Pipeline(tweaked, ToolchainConfig(), WcetAnalysisCache()).run(
        _diagram(seed=22)
    )
    _assert_bit_identical(result, cold)


def test_everything_changed_recomputes_every_stage():
    pipe = _pipeline()
    base = pipe.run(_diagram(seed=23))
    other_pipe = _pipeline(
        platform=generic_predictable_multicore(cores=3),
        config=ToolchainConfig(granularity="loop"),
        cache=pipe.wcet_cache,
    )
    result = other_pipe.run_incremental(base, _diagram(seed=24, stages=4))
    report = result.artifacts["incremental_report"]
    assert report.stages_reused == 0
    assert report.diff.everything_changed
    cold = Pipeline(
        generic_predictable_multicore(cores=3),
        ToolchainConfig(granularity="loop"),
        WcetAnalysisCache(),
    ).run(_diagram(seed=24, stages=4))
    _assert_bit_identical(result, cold)


def test_custom_stage_graph_falls_back_to_cold():
    pipe = _pipeline().with_stage(
        Stage(
            name="audit",
            run=lambda context: {"audit": len(context.artifact("htg").tasks)},
            consumes=("htg",),
            produces=("audit",),
        )
    )
    base = pipe.run(_diagram(seed=25))
    result = pipe.run_incremental(base, _diagram(seed=25))
    report = result.artifacts["incremental_report"]
    assert report.fallback_reason is not None
    assert report.stages_reused == 0
    assert "audit" in result.artifacts


def test_chained_incremental_runs():
    pipe = _pipeline()
    previous = pipe.run(_diagram(seed=26))
    for step in range(3):
        edited = _diagram(seed=26)
        random_edit_script(edited, num_edits=step + 1, seed=step)
        previous = pipe.run_incremental(previous, edited)
        _assert_bit_identical(previous, _pipeline().run(edited))


# ---------------------------------------------------------------------- #
# warm-started fixed points
# ---------------------------------------------------------------------- #
def test_warm_start_matches_cold_fixed_point():
    from repro.frontend import compile_diagram
    from repro.htg import extract_htg
    from repro.wcet import HardwareCostModel

    platform = generic_predictable_multicore(cores=4)
    cache = WcetAnalysisCache()
    model = compile_diagram(_diagram(seed=30))
    htg = extract_htg(model)
    cache.annotate_htg(htg, model.entry, HardwareCostModel(platform, 0))
    leaf_ids = sorted(t.task_id for t in htg.leaf_tasks())
    mapping = {tid: i % 4 for i, tid in enumerate(leaf_ids)}
    order = default_core_order(htg, mapping)
    cold = system_level_wcet(htg, model.entry, platform, mapping, order, cache=cache)
    # a fresh cache avoids the result-tier memo (which would replay the cold
    # result before the warm path is even considered)
    warm = system_level_wcet(
        htg, model.entry, platform, mapping, order,
        cache=WcetAnalysisCache(), warm_start=cold,
    )
    assert warm.makespan == cold.makespan
    assert warm.task_effective_wcet == cold.task_effective_wcet
    assert warm.warm_info is not None and warm.warm_info["warm_started"]
    assert warm.warm_info["certified"]
    assert warm.warm_info["dirty_cores"] == []


def test_warm_start_hint_is_ambient_and_restored():
    from repro.wcet import system_level

    assert system_level._WARM_HINT is None
    sentinel = object()
    with warm_start_hint(sentinel):
        assert system_level._WARM_HINT is sentinel
        with warm_start_hint(None):
            assert system_level._WARM_HINT is None
        assert system_level._WARM_HINT is sentinel
    assert system_level._WARM_HINT is None


# ---------------------------------------------------------------------- #
# cache invalidation (satellite)
# ---------------------------------------------------------------------- #
def test_invalidate_fingerprints_function():
    from repro.frontend import compile_diagram
    from repro.ir.expressions import Const, Var
    from repro.ir.statements import Assign

    cache = WcetAnalysisCache()
    model = compile_diagram(_diagram(seed=31))
    before = cache.function_fingerprint(model.entry)
    model.entry.body.append(Assign(Var("extra"), Const(1.0)))
    # without invalidation the memo is stale (documented UB)...
    assert cache.function_fingerprint(model.entry) == before
    # ...and invalidate_fingerprints drops it
    cache.invalidate_fingerprints(model.entry)
    assert cache.function_fingerprint(model.entry) != before


def test_invalidate_fingerprints_htg_and_model():
    from repro.frontend import compile_diagram
    from repro.htg import extract_htg
    from repro.wcet import HardwareCostModel

    cache = WcetAnalysisCache()
    model = compile_diagram(_diagram(seed=32))
    htg = extract_htg(model)
    task = next(t for t in htg.leaf_tasks() if t.statements is not None)
    fp = cache.region_fingerprint(task.statements)
    assert cache.region_fingerprint(task.statements) == fp
    cache.invalidate_fingerprints(htg)
    assert cache.region_fingerprint(task.statements) == fp  # recomputed, equal
    cost = HardwareCostModel(generic_predictable_multicore(cores=2), 0)
    cache.model_signature(cost)
    cache.invalidate_fingerprints(cost)
    with pytest.raises(TypeError):
        cache.invalidate_fingerprints(42)


# ---------------------------------------------------------------------- #
# report replay (satellite)
# ---------------------------------------------------------------------- #
def test_finding_provenance_validation():
    finding = Finding(code="x", message="m")
    assert finding.provenance == "computed"
    assert finding.as_dict()["provenance"] == "computed"
    with pytest.raises(ValueError):
        Finding(code="x", message="m", provenance="guessed")


def test_mark_reused_sets_provenance():
    report = AnalysisReport("demo")
    report.add(Finding(code="a", message="m", severity="warning"))
    reused = mark_reused(report)
    assert all(f.provenance == "reused" for f in reused.findings)
    assert reused.checked["reused"] == 1
    # the original is untouched
    assert all(f.provenance == "computed" for f in report.findings)


def test_incremental_analysis_store_roundtrip():
    store = IncrementalAnalysisStore(max_entries=2)
    report = AnalysisReport("demo")
    report.add(Finding(code="a", message="m"))
    assert store.reports_for("fp1") is None
    store.record("fp1", [report])
    replayed = store.reports_for("fp1")
    assert replayed is not None
    assert replayed[0].findings[0].provenance == "reused"
    assert (store.hits, store.misses) == (1, 1)
    store.record("fp2", [])
    store.record("fp3", [])  # evicts fp1
    assert len(store) == 2
    assert store.reports_for("fp1") is None


# ---------------------------------------------------------------------- #
# diff CLI
# ---------------------------------------------------------------------- #
def test_diff_cli_same_target(capsys):
    from repro.cli import main

    assert main(["diff", "polka", "polka"]) == 0
    out = capsys.readouterr().out
    assert "stage htg" in out and "reused" in out
    assert "replayed (provenance=reused)" in out


def test_diff_cli_json(capsys):
    import json

    from repro.cli import main

    assert main(["diff", "polka", "polka", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["report"]["stages_recomputed"] == 0
    assert payload["code_level_replayed"] is True
    assert payload["old_wcet_bound"] == payload["new_wcet_bound"]


def test_diff_cli_unknown_target():
    from repro.cli import main

    assert main(["diff", "polka", "no_such_target"]) == 2
