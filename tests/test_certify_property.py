"""Property smoke: randomized workloads always produce accepted chains.

Seeded parametrization (not hypothesis -- CI does not install it) over the
synthetic workload generators: whatever diagram or HTG shape comes out,
the full flow must yield a certificate chain every independent checker
accepts.  This is the "producer and checker agree on arbitrary inputs"
property; any divergence is a bug in one of them.
"""

import pytest

from repro.adl.platforms import generic_predictable_multicore
from repro.analysis.certify import build_certificates, certify_pipeline_result
from repro.core.config import ToolchainConfig
from repro.core.pipeline import run_pipeline
from repro.htg.extraction import ExtractionOptions, extract_htg
from repro.scheduling.schedule import default_core_order, evaluate_mapping
from repro.usecases.workloads import random_pipeline_diagram, synthetic_compiled_model
from repro.wcet.code_level import annotate_htg_wcets
from repro.wcet.hardware_model import HardwareCostModel


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
@pytest.mark.parametrize("cores", [2, 4])
def test_random_diagram_chain_accepted(seed, cores):
    diagram = random_pipeline_diagram(
        stages=2 + seed % 3, width=1 + seed % 2, vector_size=16, seed=seed
    )
    platform = generic_predictable_multicore(cores=cores)
    result = run_pipeline(
        diagram,
        platform,
        ToolchainConfig(granularity="loop", loop_chunks=2, certify=True),
    )
    chain = result.certificates
    assert chain.ok, [str(f) for f in chain.findings()]
    # the witness is complete: the IPET certificate proved optimality too
    assert chain.ipet.duals is not None
    assert chain.reports[2].checked.get("duals_checked", 0) > 0


@pytest.mark.parametrize("seed", [10, 11, 12, 13])
def test_random_htg_chain_accepted(seed):
    """Bypass the model layer: random IR + hand mapping, straight to the
    certificate chain (exercises shapes the diagram generator cannot)."""
    model = synthetic_compiled_model(
        num_kernels=3 + seed % 4, vector_size=24, seed=seed
    )
    htg = extract_htg(model, ExtractionOptions(granularity="loop", loop_chunks=2))
    cores = 2 + seed % 3
    platform = generic_predictable_multicore(cores=cores)
    annotate_htg_wcets(htg, model.entry, HardwareCostModel(platform, 0))
    mapping = {
        t.task_id: i % cores
        for i, t in enumerate(htg.topological_tasks())
        if not t.is_synthetic
    }
    schedule = evaluate_mapping(
        htg, model.entry, platform, mapping, default_core_order(htg, mapping)
    )
    chain = build_certificates(schedule, model.entry, htg, platform)
    assert chain.ok, [str(f) for f in chain.findings()]


@pytest.mark.parametrize("seed", [20, 21, 22])
def test_certify_survives_the_block_granularity(seed):
    """Block granularity produces many more, smaller tasks."""
    diagram = random_pipeline_diagram(stages=2, width=2, vector_size=8, seed=seed)
    platform = generic_predictable_multicore(cores=3)
    result = run_pipeline(
        diagram, platform, ToolchainConfig(granularity="block")
    )
    chain = certify_pipeline_result(result, derive_facts=True)
    assert chain.ok, [str(f) for f in chain.findings()]
